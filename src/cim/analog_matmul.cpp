#include "cim/analog_matmul.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/simd.hpp"
#include "util/simd_kernels.hpp"
#include "util/thread_pool.hpp"

namespace nora::cim {

AnalogMatmul::AnalogMatmul(const Matrix& w, std::vector<float> s,
                           const TileConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      k_(w.rows()),
      n_(w.cols()),
      s_(std::move(s)),
      dac_(cfg.dac_steps(), 1.0f),
      sshape_(cfg.sshape_k),
      stream_base_(util::derive_seed(seed, "mvm-streams")) {
  if (k_ == 0 || n_ == 0) throw std::invalid_argument("AnalogMatmul: empty weights");
  if (s_.empty()) s_.assign(static_cast<std::size_t>(k_), 1.0f);
  if (static_cast<std::int64_t>(s_.size()) != k_) {
    throw std::invalid_argument("AnalogMatmul: s length must equal in_dim");
  }
  for (float v : s_) {
    if (!(v > 0.0f) || !std::isfinite(v)) {
      throw std::invalid_argument("AnalogMatmul: s entries must be finite and > 0");
    }
  }
  // Fold s into the weights (Eq. 6), then partition over the tile grid.
  Matrix w_scaled = w;
  for (std::int64_t k = 0; k < k_; ++k) {
    auto row = w_scaled.row(k);
    const float sk = s_[static_cast<std::size_t>(k)];
    for (auto& v : row) v *= sk;
  }
  // Spare columns are reserved out of each physical tile, shrinking its
  // logical capacity.
  if (cfg_.spare_cols < 0 || cfg_.spare_cols >= cfg_.tile_cols) {
    throw std::invalid_argument(
        "AnalogMatmul: spare_cols must be in [0, tile_cols)");
  }
  const std::int64_t tr = cfg_.tile_rows;
  const std::int64_t tc = cfg_.tile_cols - cfg_.spare_cols;
  // Program-time randomness (programming noise, faults, drift exponents)
  // keeps the original sequential split sequence, so construction is
  // bit-identical to earlier revisions; only the runtime streams moved
  // to counter-based derivation.
  util::Rng boot(seed);
  int tile_id = 0;
  for (std::int64_t k0 = 0; k0 < k_; k0 += tr) {
    RowBlock block;
    block.k0 = k0;
    block.k1 = std::min(k_, k0 + tr);
    for (std::int64_t c0 = 0; c0 < n_; c0 += tc) {
      const std::int64_t c1 = std::min(n_, c0 + tc);
      Matrix slice(block.k1 - block.k0, c1 - c0);
      for (std::int64_t k = block.k0; k < block.k1; ++k) {
        for (std::int64_t c = c0; c < c1; ++c) {
          slice.at(k - block.k0, c - c0) = w_scaled.at(k, c);
        }
      }
      block.tiles.push_back(std::make_unique<AnalogTile>(
          slice, cfg_, boot.split("tile-" + std::to_string(tile_id++))));
      block.col0.push_back(c0);
    }
    blocks_.push_back(std::move(block));
  }
}

void AnalogMatmul::run_work_item(std::size_t b, std::size_t ti0,
                                 std::size_t ti1, bool commit_dac,
                                 std::uint64_t t, std::span<const float> xrow,
                                 float avg_alpha_b, std::uint64_t epoch,
                                 std::span<float> y, BlockWork& work) const {
  const RowBlock& block = blocks_[b];
  const std::int64_t nk = block.k1 - block.k0;
  // Per-thread workspace: pool workers (and the calling thread) are
  // long-lived, so these buffers hit their high-water size once and then
  // serve every subsequent work item — any layer, any step —
  // allocation-free. Indexing below is bounded by nk explicitly, so a
  // buffer left larger by a wider layer is harmless.
  struct Workspace {
    std::vector<float> xs, xhat;
    std::vector<double> in_noise;
    TileMvmScratch tile;
  };
  thread_local Workspace ws;
  if (ws.xs.size() < static_cast<std::size_t>(nk)) {
    ws.xs.resize(static_cast<std::size_t>(nk));
    ws.xhat.resize(static_cast<std::size_t>(nk));
  }
  std::vector<float>& xs = ws.xs;
  std::vector<float>& xhat = ws.xhat;
  float abs_max = 0.0f;
  for (std::int64_t k = 0; k < nk; ++k) {
    const float v =
        xrow[block.k0 + k] / s_[static_cast<std::size_t>(block.k0 + k)];
    xs[static_cast<std::size_t>(k)] = v;
    abs_max = std::max(abs_max, std::fabs(v));
  }
  float alpha = 1.0f;
  switch (cfg_.scaling) {
    case InputScaling::kNone:
      alpha = 1.0f;
      break;
    case InputScaling::kAbsMax:
      alpha = abs_max > 0.0f ? abs_max : 1.0f;  // Eq. 5 / Eq. 7
      break;
    case InputScaling::kAvgAbsMax:
      alpha = avg_alpha_b;
      break;
  }
  work.tiles.assign(block.tiles.size(), TileRunCounters{});
  // Bound management [Gokmen'17]: rerun with doubled alpha while the
  // ADC saturates (weaker signal, but no output clipping). Each attempt
  // keys its own noise streams on (epoch, token, block, attempt), so a
  // retry re-samples fresh hardware noise exactly like a physical rerun.
  const bool use_in_noise = cfg_.in_noise > 0.0f;
  const double in_stddev = cfg_.in_noise;
  int iter = 0;
  for (;;) {
    const std::uint64_t work_key = util::derive_stream(
        stream_base_, epoch, t,
        (static_cast<std::uint64_t>(b) << 8) | static_cast<std::uint64_t>(iter));
    // The input-noise stream draws exactly one standard normal per
    // element, unconditionally, so the whole attempt's draws batch into
    // one gaussian_fill from the identical derived stream — same seed,
    // same draw order, same bits as the former per-element calls. The
    // stream (and its derivation) is skipped entirely when input noise
    // is off: nothing else ever reads it, so the skip is unobservable.
    if (use_in_noise) {
      if (ws.in_noise.size() < static_cast<std::size_t>(nk)) {
        ws.in_noise.resize(static_cast<std::size_t>(nk));
      }
      util::Rng in_rng(util::derive_stream(work_key, 0));
      in_rng.gaussian_fill(
          std::span<double>(ws.in_noise.data(), static_cast<std::size_t>(nk)));
    }
    // Input path: rescale by alpha, DAC-quantize (clipping at full
    // scale), S-shape nonlinearity, additive input noise. DAC counters
    // stay attempt-local and only the accepted pass commits them: a
    // bound-management retry replays the SAME physical samples at a
    // different scale, so counting every attempt would double-count the
    // converter traffic (retries are visible in bm_retries instead).
    std::int64_t dac_samples = 0;
    std::int64_t dac_clipped = 0;
    const float inv_alpha = 1.0f / alpha;
    double l2 = 0.0;
    if (util::simd::use_avx2()) {
      // Vector stage: scale/clip/quantize eight samples at a time; the
      // S-shape (libm tanh) stays scalar, the additive-noise and l2
      // epilogues mirror the compiled scalar expressions exactly
      // (fma-with-zero and the fused l2 += v*v chain), so this branch is
      // bit-identical to the scalar loop below.
      dac_samples = nk;
      dac_clipped = util::simd::dac_scale_clip_quantize_avx2(
          xs.data(), xhat.data(), static_cast<std::size_t>(nk), inv_alpha,
          dac_.steps(), dac_.bound());
      if (sshape_.enabled()) {
        for (std::int64_t k = 0; k < nk; ++k) {
          auto& v = xhat[static_cast<std::size_t>(k)];
          v = sshape_.apply(v);
        }
      }
      if (use_in_noise) {
        util::simd::add_scaled_gaussian_avx2(xhat.data(), ws.in_noise.data(),
                                             static_cast<std::size_t>(nk),
                                             in_stddev);
      }
      for (std::int64_t k = 0; k < nk; ++k) {
        const double vd = xhat[static_cast<std::size_t>(k)];
        l2 = std::fma(vd, vd, l2);
      }
    } else {
      for (std::int64_t k = 0; k < nk; ++k) {
        float v = xs[static_cast<std::size_t>(k)] * inv_alpha;
        ++dac_samples;
        if (std::fabs(v) > 1.0f) {
          ++dac_clipped;
          v = v > 0.0f ? 1.0f : -1.0f;
        }
        v = dac_.quantize(v);
        v = sshape_.apply(v);
        if (use_in_noise) {
          v += static_cast<float>(
              0.0 + in_stddev * ws.in_noise[static_cast<std::size_t>(k)]);
        }
        xhat[static_cast<std::size_t>(k)] = v;
        l2 += double(v) * v;
      }
    }
    const float x_l2 = static_cast<float>(std::sqrt(l2));
    const std::span<const float> x_hat(xhat.data(),
                                       static_cast<std::size_t>(nk));
    // Zero exactly the owned tiles' output spans (the full row when the
    // item owns the whole block — the tile columns tile [0, n) exactly).
    for (std::size_t ti = ti0; ti < ti1; ++ti) {
      auto span = y.subspan(static_cast<std::size_t>(block.col0[ti]),
                            static_cast<std::size_t>(block.tiles[ti]->cols()));
      std::fill(span.begin(), span.end(), 0.0f);
    }
    bool saturated = false;
    for (std::size_t ti = ti0; ti < ti1; ++ti) {
      const AnalogTile& tile = *block.tiles[ti];
      util::Rng tile_rng(util::derive_stream(work_key, 1 + ti));
      const bool abft = tile.abft_enabled();
      util::Rng abft_rng(
          abft ? util::derive_stream(work_key, 0x100000000ull + ti) : 0);
      saturated |=
          tile.mvm(x_hat, x_l2, alpha,
                   y.subspan(static_cast<std::size_t>(block.col0[ti]),
                             static_cast<std::size_t>(tile.cols())),
                   tile_rng, abft ? &abft_rng : nullptr, work.tiles[ti],
                   ws.tile);
    }
    if (!saturated || !cfg_.bound_management || iter >= cfg_.bm_max_iters) {
      if (commit_dac) {
        work.stats.dac_samples += dac_samples;
        work.stats.dac_clipped += dac_clipped;
      }
      break;
    }
    alpha *= 2.0f;
    ++iter;
    ++work.stats.bm_retries;
  }
  work.stats.alpha_sum += alpha;
  ++work.stats.alpha_count;
}

Matrix AnalogMatmul::forward(const Matrix& x) { return forward_impl(x, {}); }

Matrix AnalogMatmul::forward(const Matrix& x, std::span<const StreamKey> keys) {
  if (static_cast<std::int64_t>(keys.size()) != x.rows()) {
    throw std::invalid_argument(
        "AnalogMatmul::forward: one StreamKey per row required");
  }
  return forward_impl(x, keys);
}

Matrix AnalogMatmul::forward_impl(const Matrix& x,
                                  std::span<const StreamKey> keys) {
  if (x.cols() != k_) throw std::invalid_argument("AnalogMatmul::forward: dim mismatch");
  const std::int64_t t_count = x.rows();
  const bool keyed = !keys.empty();
  Matrix y(t_count, n_);
  // For the kAvgAbsMax policy the scale is shared across an alpha
  // group: the whole call in the legacy path, each contiguous run of
  // rows with equal StreamKey::stream in the keyed path (so a request's
  // alpha never depends on its batch neighbours).
  std::vector<std::int64_t>& group_of = group_of_;  // row -> alpha-group index
  std::int64_t n_groups = t_count > 0 ? 1 : 0;
  if (t_count > 0) {
    group_of.assign(static_cast<std::size_t>(t_count), 0);
    if (keyed) {
      for (std::int64_t t = 1; t < t_count; ++t) {
        if (keys[static_cast<std::size_t>(t)].stream !=
            keys[static_cast<std::size_t>(t - 1)].stream) {
          ++n_groups;
        }
        group_of[static_cast<std::size_t>(t)] = n_groups - 1;
      }
    }
  }
  std::vector<float>& avg_alpha = avg_alpha_;
  avg_alpha.assign(blocks_.size() * static_cast<std::size_t>(n_groups), 0.0f);
  if (cfg_.scaling == InputScaling::kAvgAbsMax && t_count > 0) {
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      double sum = 0.0;
      std::int64_t group_n = 0;
      std::int64_t group = 0;
      for (std::int64_t t = 0; t < t_count; ++t) {
        if (group_of[static_cast<std::size_t>(t)] != group) {
          float& a = avg_alpha[b * static_cast<std::size_t>(n_groups) +
                               static_cast<std::size_t>(group)];
          a = static_cast<float>(sum / static_cast<double>(group_n));
          if (a <= 0.0f) a = 1.0f;
          sum = 0.0;
          group_n = 0;
          group = group_of[static_cast<std::size_t>(t)];
        }
        const auto row = x.row(t);
        float m = 0.0f;
        for (std::int64_t k = blocks_[b].k0; k < blocks_[b].k1; ++k) {
          m = std::max(m, std::fabs(row[k] / s_[static_cast<std::size_t>(k)]));
        }
        sum += m;
        ++group_n;
      }
      float& a = avg_alpha[b * static_cast<std::size_t>(n_groups) +
                           static_cast<std::size_t>(group)];
      a = static_cast<float>(sum / static_cast<double>(group_n));
      if (a <= 0.0f) a = 1.0f;
    }
  }
  // Fan the (token x row-block) work items over the pool. Each item
  // writes a private output slice and a private BlockWork; the shared
  // state (stats_, y rows, tile counters) is updated afterwards in
  // canonical (token, row-block) order, so the float accumulation order
  // and every statistic are independent of the thread count.
  const std::uint64_t epoch = keyed ? 0 : fwd_epoch_++;
  const std::int64_t n_blocks = static_cast<std::int64_t>(blocks_.size());
  const bool parallel = cfg_.n_threads > 1;
  if (parallel) util::ThreadPool::global().ensure(cfg_.n_threads);
  // Token chunking bounds the private-slice memory at ~16 MB while still
  // exposing enough items to keep every worker busy.
  const std::int64_t budget = std::int64_t{1} << 22;  // floats
  const std::int64_t chunk = std::clamp<std::int64_t>(
      budget / std::max<std::int64_t>(1, n_blocks * n_), 1,
      std::max<std::int64_t>(1, t_count));
  // Member scratch: assign() resets contents but retains capacity (and,
  // for works_, each BlockWork's inner counter capacity), so repeated
  // forwards of the same shape — every decode step — reuse the same
  // storage with no allocation.
  std::vector<float>& partial = partial_;
  std::vector<BlockWork>& works = works_;
  for (std::int64_t tc0 = 0; tc0 < t_count; tc0 += chunk) {
    const std::int64_t tc1 = std::min(t_count, tc0 + chunk);
    if (sharded_) {
      run_chunk_sharded(x, keys, epoch, tc0, tc1, n_groups, y);
      continue;
    }
    const std::int64_t items = (tc1 - tc0) * n_blocks;
    partial.resize(static_cast<std::size_t>(items * n_));
    works.assign(static_cast<std::size_t>(items), BlockWork{});
    auto run_item = [&](std::int64_t i) {
      const std::int64_t t = tc0 + i / n_blocks;
      const std::size_t b = static_cast<std::size_t>(i % n_blocks);
      const std::uint64_t row_epoch =
          keyed ? keys[static_cast<std::size_t>(t)].stream : epoch;
      const std::uint64_t row_token =
          keyed ? keys[static_cast<std::size_t>(t)].token
                : static_cast<std::uint64_t>(t);
      run_work_item(b, 0, blocks_[b].tiles.size(), true, row_token, x.row(t),
                    avg_alpha[b * static_cast<std::size_t>(n_groups) +
                              static_cast<std::size_t>(
                                  group_of[static_cast<std::size_t>(t)])],
                    row_epoch,
                    std::span<float>(partial.data() + i * n_,
                                     static_cast<std::size_t>(n_)),
                    works[static_cast<std::size_t>(i)]);
    };
    if (parallel) {
      util::ThreadPool::global().parallel_for(items, run_item);
    } else {
      for (std::int64_t i = 0; i < items; ++i) run_item(i);
    }
    // Deterministic serial reduction.
    for (std::int64_t t = tc0; t < tc1; ++t) {
      auto yrow = y.row(t);
      for (std::int64_t b = 0; b < n_blocks; ++b) {
        const std::int64_t i = (t - tc0) * n_blocks + b;
        BlockWork& work = works[static_cast<std::size_t>(i)];
        stats_.accumulate(work.stats);
        const float* p = partial.data() + i * n_;
        for (std::int64_t j = 0; j < n_; ++j) yrow[j] += p[j];
        auto& tiles = blocks_[static_cast<std::size_t>(b)].tiles;
        for (std::size_t ti = 0; ti < tiles.size(); ++ti) {
          tiles[ti]->add_run_counters(work.tiles[ti]);
        }
      }
      // Non-finite guard: a NaN/Inf here would silently poison every
      // downstream layer; fail loudly, naming the offender instead.
      for (std::int64_t j = 0; j < n_; ++j) {
        if (!std::isfinite(yrow[j])) {
          throw std::runtime_error(
              "AnalogMatmul[" + (label_.empty() ? "?" : label_) +
              "]: non-finite output at token " + std::to_string(t) +
              ", column " + std::to_string(j));
        }
      }
    }
  }
  return y;
}

void AnalogMatmul::set_shard_plan(ShardPlan plan) {
  if (plan.n_chips < 1) {
    throw std::invalid_argument("AnalogMatmul: shard plan needs >= 1 chip");
  }
  if (plan.pools.size() != static_cast<std::size_t>(plan.n_chips)) {
    throw std::invalid_argument(
        "AnalogMatmul: shard plan needs one pool slot per chip");
  }
  shard_ = std::move(plan);
  sharded_ = true;
}

void AnalogMatmul::clear_shard_plan() {
  shard_ = ShardPlan{};
  sharded_ = false;
}

void AnalogMatmul::run_chunk_sharded(const Matrix& x,
                                     std::span<const StreamKey> keys,
                                     std::uint64_t epoch, std::int64_t tc0,
                                     std::int64_t tc1, std::int64_t n_groups,
                                     Matrix& y) {
  const bool keyed = !keys.empty();
  const std::int64_t n_blocks = static_cast<std::int64_t>(blocks_.size());
  const std::int64_t n_cols = col_blocks();
  const std::int64_t rows = tc1 - tc0;
  const std::int64_t slots = rows * n_blocks;   // (token, row-block) rows
  const std::int64_t items = slots * n_cols;    // (token, row-block, tile)
  partial_.resize(static_cast<std::size_t>(slots * n_));
  works_.assign(static_cast<std::size_t>(items), BlockWork{});
  auto run_item = [&](std::int64_t i) {
    const std::int64_t t = tc0 + i / (n_blocks * n_cols);
    const std::int64_t rem = i % (n_blocks * n_cols);
    const std::size_t b = static_cast<std::size_t>(rem / n_cols);
    const std::size_t ti = static_cast<std::size_t>(rem % n_cols);
    const std::uint64_t row_epoch =
        keyed ? keys[static_cast<std::size_t>(t)].stream : epoch;
    const std::uint64_t row_token =
        keyed ? keys[static_cast<std::size_t>(t)].token
              : static_cast<std::uint64_t>(t);
    const std::int64_t slot = (t - tc0) * n_blocks + static_cast<std::int64_t>(b);
    run_work_item(b, ti, ti + 1, ti == 0, row_token, x.row(t),
                  avg_alpha_[b * static_cast<std::size_t>(n_groups) +
                             static_cast<std::size_t>(
                                 group_of_[static_cast<std::size_t>(t)])],
                  row_epoch,
                  std::span<float>(partial_.data() + slot * n_,
                                   static_cast<std::size_t>(n_)),
                  works_[static_cast<std::size_t>(i)]);
  };
  // Chip ownership: ceil-balanced CONTIGUOUS ranges of the shard axis
  // (row blocks or tile columns). Each chip's item list is a pure
  // function of (grid shape, plan), never of execution order; every item
  // lands on exactly one chip, so any plan runs the identical item set.
  const int n_chips = shard_.n_chips;
  const std::int64_t extent =
      shard_.axis == ShardAxis::kRowBlocks ? n_blocks : n_cols;
  if (static_cast<int>(chip_items_.size()) != n_chips) {
    chip_items_.resize(static_cast<std::size_t>(n_chips));
  }
  for (auto& list : chip_items_) list.clear();
  for (std::int64_t i = 0; i < items; ++i) {
    const std::int64_t rem = i % (n_blocks * n_cols);
    const std::int64_t e = shard_.axis == ShardAxis::kRowBlocks
                               ? rem / n_cols
                               : rem % n_cols;
    // element e -> chip floor(e * n_chips / extent) of the balanced split
    const std::int64_t chip = extent > 0 ? e * n_chips / extent : 0;
    chip_items_[static_cast<std::size_t>(chip)].push_back(i);
  }
  // Chips execute concurrently (outer fan over the global pool), each
  // draining its own item list on its own pool domain. Items write
  // disjoint column spans of their (token, row-block) partial row and
  // private BlockWork slots, so the fan-out is race-free by layout.
  util::ThreadPool& host = util::ThreadPool::global();
  host.ensure(n_chips);
  host.parallel_for(n_chips, [&](std::int64_t c) {
    const auto& list = chip_items_[static_cast<std::size_t>(c)];
    if (list.empty()) return;
    util::ThreadPool* pool = shard_.pools[static_cast<std::size_t>(c)];
    auto run_local = [&](std::int64_t j) {
      run_item(list[static_cast<std::size_t>(j)]);
    };
    const std::int64_t local = static_cast<std::int64_t>(list.size());
    if (pool != nullptr && pool->threads() > 1) {
      pool->parallel_for(local, run_local);
    } else {
      for (std::int64_t j = 0; j < local; ++j) run_local(j);
    }
  });
  // Deterministic reduction, independent of the plan: statistics fold
  // serially in canonical (token, row-block, tile) order, partial sums
  // reduce over row blocks through a canonical stride-doubling tree —
  // the digital all-reduce a real multi-chip system would run, with a
  // bracketing that is a pure function of the row-block count.
  for (std::int64_t t = tc0; t < tc1; ++t) {
    for (std::int64_t b = 0; b < n_blocks; ++b) {
      auto& tiles = blocks_[static_cast<std::size_t>(b)].tiles;
      for (std::int64_t ti = 0; ti < n_cols; ++ti) {
        const std::int64_t i = ((t - tc0) * n_blocks + b) * n_cols + ti;
        BlockWork& work = works_[static_cast<std::size_t>(i)];
        stats_.accumulate(work.stats);
        tiles[static_cast<std::size_t>(ti)]->add_run_counters(
            work.tiles[static_cast<std::size_t>(ti)]);
      }
    }
    float* base = partial_.data() + (t - tc0) * n_blocks * n_;
    for (std::int64_t stride = 1; stride < n_blocks; stride *= 2) {
      for (std::int64_t b = 0; b + stride < n_blocks; b += 2 * stride) {
        float* dst = base + b * n_;
        const float* src = base + (b + stride) * n_;
        for (std::int64_t j = 0; j < n_; ++j) dst[j] += src[j];
      }
    }
    auto yrow = y.row(t);
    for (std::int64_t j = 0; j < n_; ++j) yrow[j] = base[j];
    for (std::int64_t j = 0; j < n_; ++j) {
      if (!std::isfinite(yrow[j])) {
        throw std::runtime_error(
            "AnalogMatmul[" + (label_.empty() ? "?" : label_) +
            "]: non-finite output at token " + std::to_string(t) +
            ", column " + std::to_string(j));
      }
    }
  }
}

void AnalogMatmul::set_read_time(float t_seconds) {
  for (auto& block : blocks_) {
    for (auto& tile : block.tiles) tile->set_read_time(t_seconds);
  }
}

double AnalogMatmul::mean_gamma() const {
  double sum = 0.0;
  std::int64_t count = 0;
  for (const auto& block : blocks_) {
    for (const auto& tile : block.tiles) {
      for (float g : tile->gamma()) sum += g;
      count += tile->cols();
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double AnalogMatmul::mean_alpha_gamma_gmax() const {
  return mean_alpha() * mean_gamma() * cfg_.g_max;
}

std::int64_t AnalogMatmul::adc_reads() const {
  std::int64_t n = 0;
  for (const auto& block : blocks_) {
    for (const auto& tile : block.tiles) n += tile->adc_reads();
  }
  return n;
}

std::int64_t AnalogMatmul::adc_saturations() const {
  std::int64_t n = 0;
  for (const auto& block : blocks_) {
    for (const auto& tile : block.tiles) n += tile->adc_saturations();
  }
  return n;
}

double AnalogMatmul::adc_saturation_rate() const {
  const std::int64_t reads = adc_reads();
  return reads > 0
             ? static_cast<double>(adc_saturations()) / static_cast<double>(reads)
             : 0.0;
}

void AnalogMatmul::reset_stats() {
  stats_ = ArrayStats{};
  for (auto& block : blocks_) {
    for (auto& tile : block.tiles) tile->reset_stats();
  }
}

faults::ArrayFaultStats AnalogMatmul::fault_stats() const {
  faults::ArrayFaultStats agg;
  for (const auto& block : blocks_) {
    for (const auto& tile : block.tiles) agg.accumulate(tile->fault_stats());
  }
  return agg;
}

AbftStats AnalogMatmul::abft_stats() const {
  AbftStats agg;
  for (const auto& block : blocks_) {
    for (const auto& tile : block.tiles) agg.accumulate(tile->abft_stats());
  }
  return agg;
}

AnalogTile& AnalogMatmul::locate(std::int64_t k, std::int64_t n,
                                 std::int64_t& j_local, std::int64_t& k_local) {
  if (k < 0 || k >= k_ || n < 0 || n >= n_) {
    throw std::invalid_argument("AnalogMatmul: device coordinate out of range");
  }
  for (auto& block : blocks_) {
    if (k < block.k0 || k >= block.k1) continue;
    for (std::size_t t = 0; t < block.tiles.size(); ++t) {
      AnalogTile& tile = *block.tiles[t];
      const std::int64_t c0 = block.col0[t];
      if (n < c0 || n >= c0 + tile.cols()) continue;
      j_local = n - c0;
      k_local = k - block.k0;
      return tile;
    }
  }
  throw std::logic_error("AnalogMatmul: tile grid does not cover coordinate");
}

void AnalogMatmul::upset_device(std::int64_t k, std::int64_t n, float value) {
  std::int64_t j = 0, kl = 0;
  locate(k, n, j, kl).upset_device(j, kl, value);
}

void AnalogMatmul::wear_stuck(std::int64_t k, std::int64_t n, float value) {
  std::int64_t j = 0, kl = 0;
  AnalogTile& tile = locate(k, n, j, kl);
  wear_.push_back({k, n, value});
  tile.wear_stuck(j, kl, value);
}

}  // namespace nora::cim
