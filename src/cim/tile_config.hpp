// Analog tile configuration — the knobs of paper Table II plus one flag
// per modelled non-ideality (paper Table I).
//
// All non-idealities act in the tile's *normalized* domain: weights are
// mapped to conductances in [-1, 1] (differential pair, normalized by
// g_max) and inputs to voltages in [-1, 1]. g_max only matters for
// reporting physical quantities (Fig. 6c plots alpha*gamma*g_max).
#pragma once

#include <cstdint>

#include "faults/fault_model.hpp"
#include "noise/drift.hpp"

namespace nora::cim {

/// NVM device family (paper Sec. VII: "this method can also be extended
/// to other NVM devices such as ReRAM. Although some NVM devices cannot
/// provide continuous analog weights, they can achieve over 8-bit weight
/// precision by using multiple memory cells").
enum class DeviceKind {
  kPcmAnalog,       // continuous conductance, PCM-like programming noise
  kReramQuantized,  // discrete conductance levels, bit-sliced over cells
};

/// How the per-token input scale alpha_i is chosen before the DAC.
enum class InputScaling {
  kNone,       // alpha = 1 (inputs assumed pre-normalized)
  kAbsMax,     // alpha_i = max|x_i| — Eq. 5, the paper's default
  kAvgAbsMax,  // alpha = batch-average of row abs-max (noise management
               // variant of [Gokmen'17]; trades clipping for resolution)
};

struct TileConfig {
  // --- converters (Table II: in_res / out_res, 7 bit = 128 steps) ---
  int dac_bits = 7;        // 0 disables input quantization
  int adc_bits = 7;        // 0 disables output quantization
  /// When > 0, these fractional step counts override the bit settings —
  /// used by the MSE-matched sensitivity sweeps, which treat converter
  /// resolution as a continuous noise knob.
  float dac_steps_override = 0.0f;
  float adc_steps_override = 0.0f;
  float adc_bound = 12.0f; // ADC full scale in normalized output units
                           // (AIHWKIT default out_bound)

  float dac_steps() const {
    if (dac_steps_override > 0.0f) return dac_steps_override;
    return dac_bits > 0 ? static_cast<float>(1 << dac_bits) : 0.0f;
  }
  float adc_steps() const {
    if (adc_steps_override > 0.0f) return adc_steps_override;
    return adc_bits > 0 ? static_cast<float>(1 << adc_bits) : 0.0f;
  }

  // --- I/O non-idealities ---
  float in_noise = 0.0f;   // additive Gaussian after the DAC
  float out_noise = 0.04f; // additive Gaussian before the ADC (Table II)
  float sshape_k = 0.0f;   // S-shape nonlinearity severity (0 = linear)

  // --- device / programming model ---
  DeviceKind device = DeviceKind::kPcmAnalog;
  /// ReRAM only: conductance levels per cell and cells per weight;
  /// effective weight precision = bits_per_cell * cells_per_weight bits.
  int reram_bits_per_cell = 4;
  int reram_cells_per_weight = 2;
  /// Iterative write-verify programming [Buechel'23, Mackin'22]: each
  /// extra iteration reads the device and corrects toward the target,
  /// geometrically shrinking the programming error toward a floor set
  /// by pulse granularity. 1 = single-shot programming.
  int write_verify_iters = 1;

  // --- tile non-idealities ---
  float w_noise = 0.0175f;      // short-term read noise (Table II)
  float prog_noise_scale = 1.0f; // programming-noise scale (1 = nominal)
  float ir_drop = 1.0f;          // IR-drop scale (Table II)
  noise::DriftConfig drift;      // PCM drift model parameters
  bool drift_enabled = false;    // drift only matters for the t > 0 ablation

  // --- hard faults & repair (yield machinery; all off by default) ---
  /// Stuck-at / dead-line / yield defects, sampled at program time from
  /// the construction seed. A default FaultConfig samples nothing and
  /// consumes no randomness (fault-free runs stay bit-identical).
  faults::FaultConfig faults;
  /// Spare columns reserved per physical tile for fault remapping; the
  /// logical capacity of a tile shrinks to tile_cols - spare_cols.
  int spare_cols = 0;
  /// Column fault density above which a logical column is remapped onto
  /// the cleanest available spare (only if the spare is cleaner).
  float spare_remap_threshold = 0.05f;
  /// Program-verify-reprogram: rounds of per-device readback + rewrite
  /// for devices outside program_tolerance of their target. 0 disables
  /// the loop entirely (and leaves RNG streams untouched).
  int max_program_retries = 0;
  /// Acceptance band for the verify readback, in normalized conductance.
  float program_tolerance = 0.02f;

  // --- runtime integrity: ABFT checksum column (off by default) ---
  /// Program one extra checksum column per tile, holding the gamma-folded
  /// column sums of the programmed conductances. Every MVM reads it back
  /// and compares against the digitally-stored as-programmed signature;
  /// a residual beyond the noise-calibrated threshold flags the tile as
  /// silently corrupted (drift, transient upsets, worn devices). The
  /// checksum read draws from a dedicated RNG stream, so enabling it
  /// never perturbs the data-path outputs; disabling it is bit-identical
  /// to a checksum-free tile.
  bool abft_checksum = false;
  /// Detection threshold in units of the clean checksum-read noise
  /// std-dev (read noise + output noise, plus the ADC half-step as an
  /// absolute term). With every runtime noise knob off the threshold is
  /// exactly zero and any post-programming change of any device flags.
  float abft_threshold_sigma = 4.0f;

  // --- geometry / physics ---
  int tile_rows = 512;   // Table II tile_size
  int tile_cols = 512;
  float g_max = 25.0f;   // muS; used only in reported alpha*gamma*g_max

  // --- input management ---
  InputScaling scaling = InputScaling::kAbsMax;
  bool bound_management = false; // iterative alpha doubling on ADC saturation
  int bm_max_iters = 3;

  // --- execution ---
  /// Execution width for AnalogMatmul::forward: (token x row-block) MVM
  /// work items fan out over the global util::ThreadPool. Every work
  /// item derives its own RNG streams from (epoch, token, row-block,
  /// tile) counters, so the output is bit-identical for ANY value of
  /// n_threads — this knob changes wall-clock only, never results.
  int n_threads = 1;

  std::uint64_t seed = 0x5eedf00dULL;

  /// The paper's Table II operating point (all non-idealities on).
  static TileConfig paper_table2() { return TileConfig{}; }

  /// Fully ideal tile: quantizers off, every noise zero. Output must
  /// equal the digital GEMM (unit-tested invariant).
  static TileConfig ideal();

  /// Ideal tile with exactly one knob left for sensitivity sweeps.
  static TileConfig ideal_except_out_noise(float sigma);
  static TileConfig ideal_except_in_noise(float sigma);
  static TileConfig ideal_except_adc(int bits, float bound = 12.0f);
  static TileConfig ideal_except_dac(int bits);
  static TileConfig ideal_except_w_noise(float sigma);
  static TileConfig ideal_except_prog_noise(float scale);
  static TileConfig ideal_except_ir_drop(float scale);
  static TileConfig ideal_except_sshape(float k);
};

}  // namespace nora::cim
