#include "model/zoo.hpp"

#include <cstdio>
#include <exception>

#include "train/checkpoint.hpp"
#include "util/paths.hpp"

namespace nora::model {

std::string checkpoint_path(const ModelSpec& spec) {
  return util::model_cache_dir() + "/" + spec.name + ".nckp";
}

std::unique_ptr<nn::TransformerLM> get_or_train(const ModelSpec& spec,
                                                bool verbose) {
  const std::string path = checkpoint_path(spec);
  if (util::file_exists(path)) {
    try {
      auto model = train::load_checkpoint(path);
      if (verbose) std::printf("[zoo] loaded %s from %s\n", spec.name.c_str(), path.c_str());
      return model;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[zoo] cached checkpoint %s unusable (%s); retraining\n",
                   path.c_str(), e.what());
    }
  }
  if (verbose) {
    std::printf("[zoo] training %s (d=%lld, layers=%lld, ~%lld params)...\n",
                spec.name.c_str(), static_cast<long long>(spec.arch.d_model),
                static_cast<long long>(spec.arch.n_layers),
                static_cast<long long>(spec.arch.param_count()));
    std::fflush(stdout);
  }
  nn::TransformerConfig arch = spec.arch;
  arch.norm_gain = planted_gains(arch.d_model, spec.outliers);
  auto model = std::make_unique<nn::TransformerLM>(arch);
  // Start with the planted gains compensated in the consuming weights,
  // mirroring how real LLMs keep small weights on outlier channels.
  compensate_planted_gains(*model);
  // Train with denser supervision: up to 4 query blocks per sequence
  // (the evaluation layout, n_queries = 1, stays in-distribution because
  // the per-example query count is drawn uniformly from 1..4).
  eval::SynthLambadaConfig train_task_cfg = spec.task;
  train_task_cfg.n_queries = 4;
  const eval::SynthLambada task(train_task_cfg);
  train::TrainConfig tc = spec.train;
  tc.verbose = verbose;
  train::train_lm(*model, task, tc);
  train::save_checkpoint(path, *model);
  if (verbose) std::printf("[zoo] cached %s -> %s\n", spec.name.c_str(), path.c_str());
  return model;
}

std::unique_ptr<nn::TransformerLM> get_or_train(const std::string& name,
                                                bool verbose) {
  return get_or_train(spec_by_name(name), verbose);
}

}  // namespace nora::model
