#include "model/families.hpp"

#include <stdexcept>

namespace nora::model {

std::vector<float> planted_gains(std::int64_t d_model, const OutlierSpec& spec) {
  std::vector<float> gains(static_cast<std::size_t>(d_model), 1.0f);
  if (spec.fraction <= 0.0f) return gains;
  util::Rng rng(util::derive_seed(spec.seed, "outlier-channels"));
  const int n_outlier = std::max(
      1, static_cast<int>(static_cast<float>(d_model) * spec.fraction));
  // Choose distinct channels.
  std::vector<std::int64_t> idx(static_cast<std::size_t>(d_model));
  for (std::int64_t i = 0; i < d_model; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (int k = 0; k < n_outlier; ++k) {
    const auto j = k + static_cast<std::int64_t>(rng.uniform_index(
                           static_cast<std::uint64_t>(d_model - k)));
    std::swap(idx[static_cast<std::size_t>(k)], idx[static_cast<std::size_t>(j)]);
    gains[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])] =
        static_cast<float>(rng.uniform(spec.amp_lo, spec.amp_hi));
  }
  return gains;
}

void compensate_planted_gains(nn::TransformerLM& model) {
  const auto& gain = model.config().norm_gain;
  if (gain.empty()) return;
  auto divide_rows = [&gain](nn::Linear& lin) {
    Matrix& w = lin.weight().value;
    for (std::int64_t k = 0; k < w.rows(); ++k) {
      auto row = w.row(k);
      const float g = gain[static_cast<std::size_t>(k)];
      for (auto& v : row) v /= g;
    }
  };
  for (auto& block : model.blocks()) {
    divide_rows(block.attention().qkv());
    divide_rows(block.mlp().up());
    if (auto* gate = block.mlp().gate()) divide_rows(*gate);
  }
}

namespace {

eval::SynthLambadaConfig default_task() {
  eval::SynthLambadaConfig t;
  t.n_keys = 24;
  t.n_vals = 24;
  t.n_filler = 40;   // vocab = 2 + 24 + 24 + 40 = 90
  t.seq_len = 32;
  t.n_pairs = 3;
  t.seed = 777;
  return t;
}

train::TrainConfig default_train(std::uint64_t seed, double target_acc) {
  train::TrainConfig tc;
  tc.steps = 6000;
  tc.batch_size = 16;
  tc.adam.lr = 2e-3f;
  // Stop once validation accuracy reaches the target. Targets mirror the
  // paper's digital-full-precision Lambada accuracies (75-89%), so the
  // models sit at a realistic, non-saturated operating point where noise
  // sensitivity is graded instead of cliff-like.
  tc.eval_every = 25;
  tc.eval_examples = 128;
  tc.target_accuracy = target_acc;
  tc.seed = seed;
  return tc;
}

ModelSpec make_opt(const std::string& name, std::int64_t d, std::int64_t layers,
                   float amp_lo, float amp_hi, std::uint64_t seed,
                   double target_acc) {
  ModelSpec s;
  s.name = name;
  s.arch.d_model = d;
  s.arch.n_layers = layers;
  s.arch.n_heads = 4;
  s.arch.d_ff = 4 * d;
  s.arch.norm_kind = nn::NormKind::kLayerNorm;
  s.arch.mlp_kind = nn::MlpKind::kGelu;
  s.arch.seed = seed;
  s.outliers = OutlierSpec{0.08f, amp_lo, amp_hi, seed};
  s.task = default_task();
  s.arch.vocab_size = s.task.vocab_size();
  s.arch.max_seq = s.task.seq_len;
  s.train = default_train(seed, target_acc);
  return s;
}

ModelSpec make_gated(const std::string& name, std::int64_t d, std::int64_t layers,
                     float frac, float amp_lo, float amp_hi, std::uint64_t seed,
                     double target_acc) {
  ModelSpec s;
  s.name = name;
  s.arch.d_model = d;
  s.arch.n_layers = layers;
  s.arch.n_heads = 4;
  s.arch.d_ff = 3 * d;  // gated MLPs use a narrower hidden dim
  s.arch.norm_kind = nn::NormKind::kRmsNorm;
  s.arch.mlp_kind = nn::MlpKind::kSiluGated;
  s.arch.seed = seed;
  s.outliers = OutlierSpec{frac, amp_lo, amp_hi, seed};
  s.task = default_task();
  s.arch.vocab_size = s.task.vocab_size();
  s.arch.max_seq = s.task.seq_len;
  s.train = default_train(seed, target_acc);
  return s;
}

}  // namespace

ModelSpec spec_by_name(const std::string& name) {
  // Early-stop targets mirror the paper's digital fp32 Lambada
  // accuracies: Fig. 5a for OPT, Table III for LLaMA/Mistral.
  // OPT-like family: LayerNorm + GELU, many strong outlier channels.
  if (name == "opt-1.3b-sim") return make_opt(name, 64, 2, 22.0f, 38.0f, 101, 0.76);
  if (name == "opt-2.7b-sim") return make_opt(name, 72, 2, 30.0f, 55.0f, 102, 0.78);
  if (name == "opt-6.7b-sim") return make_opt(name, 88, 3, 22.0f, 38.0f, 103, 0.80);
  if (name == "opt-13b-sim") return make_opt(name, 104, 3, 20.0f, 34.0f, 104, 0.81);
  // LLaMA/Mistral-like family: RMSNorm + SiLU-gated, few outliers.
  if (name == "llama2-7b-sim")
    return make_gated(name, 96, 3, 0.04f, 16.0f, 26.0f, 201, 0.89);
  if (name == "llama3-8b-sim")
    return make_gated(name, 96, 3, 0.04f, 14.0f, 22.0f, 202, 0.83);
  if (name == "mistral-7b-sim")
    return make_gated(name, 96, 3, 0.03f, 20.0f, 34.0f, 203, 0.87);
  throw std::invalid_argument("spec_by_name: unknown model '" + name + "'");
}

std::vector<std::string> opt_family() {
  return {"opt-1.3b-sim", "opt-2.7b-sim", "opt-6.7b-sim", "opt-13b-sim"};
}

std::vector<std::string> other_family() {
  return {"llama2-7b-sim", "llama3-8b-sim", "mistral-7b-sim"};
}

std::vector<std::string> all_models() {
  auto v = opt_family();
  for (auto& n : other_family()) v.push_back(n);
  return v;
}

}  // namespace nora::model
