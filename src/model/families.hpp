// The synthetic model zoo: scaled-down stand-ins for the seven LLMs the
// paper evaluates (OPT 1.3b/2.7b/6.7b/13b, LLaMA-2-7B, LLaMA-3-8B,
// Mistral-7B-v1.0).
//
// What is preserved from each real family is its *distributional
// character*, which is what analog CIM non-idealities act on:
//   - OPT-like: LayerNorm + GELU MLP, many strongly amplified outlier
//     channels -> very high activation kurtosis, most
//     quantization-sensitive (paper Fig. 3a/b).
//   - LLaMA-like: RMSNorm + SiLU-gated MLP, few moderate outlier
//     channels -> robust-ish to A/D quantization.
//   - Mistral-like: RMSNorm + SiLU-gated MLP, few but extreme outlier
//     channels (paper Fig. 4 reports activation kurtosis 113.6).
// Outliers are planted as fixed per-channel norm gains; training learns
// around them digitally, exactly like real LLMs learn around their
// emergent outlier channels.
//
// Parameter counts are ~0.1-1 M (single-CPU budget); relative size
// ordering within the OPT family is preserved.
#pragma once

#include <string>
#include <vector>

#include "eval/synthlambada.hpp"
#include "nn/transformer.hpp"
#include "train/trainer.hpp"

namespace nora::model {

struct OutlierSpec {
  float fraction = 0.0f;  // fraction of channels amplified
  float amp_lo = 1.0f;    // amplification factor range
  float amp_hi = 1.0f;
  std::uint64_t seed = 99;
};

struct ModelSpec {
  std::string name;
  nn::TransformerConfig arch;  // norm_gain left empty; planted by build time
  OutlierSpec outliers;
  eval::SynthLambadaConfig task;
  train::TrainConfig train;
};

/// Build the planted norm-gain vector for a spec.
std::vector<float> planted_gains(std::int64_t d_model, const OutlierSpec& spec);

/// Rescale the init of every linear layer that consumes norm outputs
/// (QKV, MLP up/gate) by 1/gain per input channel. At initialization the
/// network then behaves as if unplanted — training proceeds normally —
/// while its *activations* keep the outlier channels. This mirrors real
/// LLMs, whose weights on outlier channels are correspondingly small
/// (the asymmetry SmoothQuant-style rescaling exploits).
void compensate_planted_gains(nn::TransformerLM& model);

/// Look up a spec by name; throws std::invalid_argument for unknown names.
ModelSpec spec_by_name(const std::string& name);

/// The OPT-like family, smallest to largest (paper Fig. 5a order).
std::vector<std::string> opt_family();
/// The LLaMA/Mistral-like family (paper Table III order).
std::vector<std::string> other_family();
/// Everything (Fig. 3 order).
std::vector<std::string> all_models();

}  // namespace nora::model
