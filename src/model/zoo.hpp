// Train-once, cache-on-disk model zoo.
//
// get_or_train() plays the role of HuggingFace's from_pretrained(): the
// first request for a model trains it on SynthLambada and stores the
// checkpoint under util::model_cache_dir(); later requests (including
// from other bench binaries) load the cached weights. Benches therefore
// always see the *same* frozen "pretrained" model.
#pragma once

#include <memory>

#include "model/families.hpp"
#include "nn/transformer.hpp"

namespace nora::model {

/// Path the spec's checkpoint is cached at.
std::string checkpoint_path(const ModelSpec& spec);

/// Load from cache, or train from scratch and cache.
std::unique_ptr<nn::TransformerLM> get_or_train(const ModelSpec& spec,
                                                bool verbose = true);

/// Convenience: by name.
std::unique_ptr<nn::TransformerLM> get_or_train(const std::string& name,
                                                bool verbose = true);

}  // namespace nora::model
