#include "noise/sshape.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::noise {

SShapeNonlinearity::SShapeNonlinearity(float k) : k_(k) {
  if (k < 0.0f) throw std::invalid_argument("SShapeNonlinearity: k must be >= 0");
  if (enabled()) inv_tanh_k_ = 1.0f / std::tanh(k_);
}

float SShapeNonlinearity::apply(float x) const {
  if (!enabled()) return x;
  return std::tanh(k_ * x) * inv_tanh_k_;
}

void SShapeNonlinearity::apply(std::span<float> xs) const {
  if (!enabled()) return;
  for (auto& x : xs) x = apply(x);
}

}  // namespace nora::noise
