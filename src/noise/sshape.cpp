#include "noise/sshape.hpp"

#include <stdexcept>

namespace nora::noise {

SShapeNonlinearity::SShapeNonlinearity(float k) : k_(k) {
  if (!std::isfinite(k)) {
    throw std::invalid_argument("SShapeNonlinearity: k must be finite");
  }
  if (k < 0.0f) throw std::invalid_argument("SShapeNonlinearity: k must be >= 0");
  if (enabled()) inv_tanh_k_ = 1.0f / std::tanh(k_);
}

}  // namespace nora::noise
