#include "noise/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nora::noise {

UniformQuantizer::UniformQuantizer(float steps, float bound)
    : steps_(steps), bound_(bound) {
  if (steps < 0.0f) throw std::invalid_argument("UniformQuantizer: negative steps");
  if (steps > 0.0f && steps < 2.0f) {
    throw std::invalid_argument("UniformQuantizer: needs at least 2 steps");
  }
  if (steps > 0.0f && bound <= 0.0f) {
    throw std::invalid_argument("UniformQuantizer: bound must be positive");
  }
}

float UniformQuantizer::quantize(float x) const {
  if (!enabled()) return x;
  const float half = steps_ / 2.0f;
  // Mid-tread uniform quantizer with saturation: levels are k * step,
  // k in [-steps/2, steps/2 - 1] — exactly `steps` codes, two's-
  // complement style, with zero always representable. Clamping at +half
  // would admit steps+1 codes, one more than the converter's bit width
  // can encode.
  float q = std::round(x / bound_ * half);
  q = std::clamp(q, -half, half - 1.0f);
  return q * bound_ / half;
}

void UniformQuantizer::apply(std::span<float> xs) const {
  if (!enabled()) return;
  for (auto& x : xs) x = quantize(x);
}

bool UniformQuantizer::saturates(float x) const {
  return enabled() && std::fabs(x) >= bound_;
}

}  // namespace nora::noise
