#include "noise/quantizer.hpp"

#include <stdexcept>

namespace nora::noise {

UniformQuantizer::UniformQuantizer(float steps, float bound)
    : steps_(steps), bound_(bound) {
  if (steps < 0.0f) throw std::invalid_argument("UniformQuantizer: negative steps");
  if (steps > 0.0f && steps < 2.0f) {
    throw std::invalid_argument("UniformQuantizer: needs at least 2 steps");
  }
  if (steps > 0.0f && bound <= 0.0f) {
    throw std::invalid_argument("UniformQuantizer: bound must be positive");
  }
}

}  // namespace nora::noise
