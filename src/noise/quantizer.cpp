#include "noise/quantizer.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::noise {

UniformQuantizer::UniformQuantizer(float steps, float bound)
    : steps_(steps), bound_(bound) {
  // `steps < 0.0f` is false for NaN, so a NaN config would silently pass
  // every range check below and poison downstream MVMs; reject non-finite
  // parameters outright.
  if (!std::isfinite(steps) || !std::isfinite(bound)) {
    throw std::invalid_argument("UniformQuantizer: non-finite parameter");
  }
  if (steps < 0.0f) throw std::invalid_argument("UniformQuantizer: negative steps");
  if (steps > 0.0f && steps < 2.0f) {
    throw std::invalid_argument("UniformQuantizer: needs at least 2 steps");
  }
  if (steps > 0.0f && bound <= 0.0f) {
    throw std::invalid_argument("UniformQuantizer: bound must be positive");
  }
}

}  // namespace nora::noise
