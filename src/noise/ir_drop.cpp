#include "noise/ir_drop.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::noise {

IrDropModel::IrDropModel(float scale, int n_rows) : scale_(scale), n_rows_(n_rows) {
  if (scale < 0.0f) throw std::invalid_argument("IrDropModel: scale must be >= 0");
  if (n_rows <= 0) throw std::invalid_argument("IrDropModel: n_rows must be > 0");
  kappa_ = kBaseDrop * scale_ * static_cast<float>(n_rows_) / 512.0f;
}

float IrDropModel::accumulate_column(std::span<const float> contributions) const {
  if (!enabled()) {
    double acc = 0.0;
    for (float c : contributions) acc += c;
    return static_cast<float>(acc);
  }
  const double inv_n = 1.0 / static_cast<double>(contributions.size());
  double cum_abs = 0.0;
  double acc = 0.0;
  for (float c : contributions) {
    cum_abs += std::fabs(c);
    acc += static_cast<double>(c) * (1.0 - kappa_ * cum_abs * inv_n);
  }
  return static_cast<float>(acc);
}

}  // namespace nora::noise
