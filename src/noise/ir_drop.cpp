#include "noise/ir_drop.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::noise {

IrDropModel::IrDropModel(float scale, int n_rows) : scale_(scale), n_rows_(n_rows) {
  if (!std::isfinite(scale)) {
    throw std::invalid_argument("IrDropModel: scale must be finite");
  }
  if (scale < 0.0f) throw std::invalid_argument("IrDropModel: scale must be >= 0");
  if (n_rows <= 0) throw std::invalid_argument("IrDropModel: n_rows must be > 0");
  kappa_ = kBaseDrop * scale_ * static_cast<float>(n_rows_) / 512.0f;
}

}  // namespace nora::noise
