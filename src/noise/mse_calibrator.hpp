// MSE-matched noise levels — the x-axis protocol of paper Fig. 3.
//
// The paper sweeps each non-ideality at magnitudes chosen so that, applied
// alone, it causes a target mean-squared error (1e-4 ... 2.8e-3) on a
// reference feature map. Given a monotone map from a noise parameter to
// the measured MSE, MseCalibrator finds the parameter hitting a target
// MSE by bracketing + bisection.
#pragma once

#include <functional>

namespace nora::noise {

struct MseCalibratorOptions {
  double param_lo = 1e-6;   // initial lower bracket for the noise parameter
  double param_hi = 1.0;    // initial upper bracket (auto-expands)
  double rel_tol = 0.02;    // stop when |mse - target| / target < rel_tol
  int max_iters = 60;
};

class MseCalibrator {
 public:
  using MseFn = std::function<double(double param)>;

  explicit MseCalibrator(MseFn fn, MseCalibratorOptions opts = {});

  /// Find the noise parameter whose MSE is approximately target_mse.
  /// Throws std::runtime_error if the function cannot bracket the target.
  double solve(double target_mse) const;

 private:
  MseFn fn_;
  MseCalibratorOptions opts_;
};

/// The four MSE levels used on the Fig. 3 x-axis (between the paper's
/// stated endpoints 1e-4..2e-4 and 2.7e-3..2.8e-3).
inline constexpr double kFig3MseLevels[4] = {1.5e-4, 1.0e-3, 1.9e-3, 2.75e-3};

/// The single MSE level of Fig. 5(b)/(c): 1.5e-3 .. 1.6e-3.
inline constexpr double kFig5MseLevel = 1.55e-3;

}  // namespace nora::noise
