// IR-drop along bitlines (paper Table I: "wire resistance non-ideality").
//
// Current accumulates along each bitline toward the ADC; wire resistance
// makes the effective read-out of far rows slightly weaker, and the
// attenuation grows with the total current already flowing in the line.
// First-order model for column j with per-row contributions I_k = w_hat_kj
// * x_hat_k (rows ordered by distance from the ADC):
//
//   y_j = sum_k I_k * (1 - kappa * C_k / n_rows),   C_k = sum_{k' <= k} |I_k'|
//
// kappa = kBaseDrop * scale * (n_rows / 512): the deviation grows with
// physical line length, matching AIHWKIT's size-dependent ir_drop model,
// and `scale` is the Table II "ir_drop" knob (1.0 = nominal).
#pragma once

#include <cmath>
#include <span>

namespace nora::noise {

class IrDropModel {
 public:
  explicit IrDropModel(float scale = 0.0f, int n_rows = 512);

  bool enabled() const { return scale_ > 0.0f; }
  float scale() const { return scale_; }
  float kappa() const { return kappa_; }

  /// Accumulate one column: returns the IR-drop-distorted dot product of
  /// per-row contributions (w_hat_kj * x_hat_k), streamed in row order.
  /// contributions[k] = w_hat_kj * x_hat_k.
  ///
  /// Defined inline: this prefix-sum loop is the single hottest loop in
  /// the analog forward (one call per tile column), and an out-of-line
  /// definition costs a call + blocks vectorization at every site.
  float accumulate_column(std::span<const float> contributions) const {
    if (!enabled()) {
      double acc = 0.0;
      for (float c : contributions) acc += c;
      return static_cast<float>(acc);
    }
    const double inv_n = 1.0 / static_cast<double>(contributions.size());
    double cum_abs = 0.0;
    double acc = 0.0;
    for (float c : contributions) {
      cum_abs += std::fabs(c);
      acc += static_cast<double>(c) * (1.0 - kappa_ * cum_abs * inv_n);
    }
    return static_cast<float>(acc);
  }

  /// Fused variant: forms each per-row contribution w[k] * x[k] on the
  /// fly instead of reading a pre-filled scratch column. The product is
  /// the same single-precision multiply the scratch fill performed, and
  /// the accumulation is the identical double-precision recurrence, so
  /// the result is bit-for-bit equal to
  ///   contrib[k] = w[k] * x[k]; accumulate_column(contrib)
  /// without the store/reload through the scratch buffer.
  float accumulate_column_fused(const float* w, const float* x,
                                std::size_t n) const {
    if (!enabled()) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += w[k] * x[k];
      return static_cast<float>(acc);
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    double cum_abs = 0.0;
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const float c = w[k] * x[k];
      cum_abs += std::fabs(c);
      acc += static_cast<double>(c) * (1.0 - kappa_ * cum_abs * inv_n);
    }
    return static_cast<float>(acc);
  }

  /// Four-column fused variant: runs accumulate_column_fused's exact
  /// recurrence on four independent columns simultaneously. Each
  /// column's operation sequence is unchanged — the columns merely
  /// interleave in time — so every out[i] is bit-for-bit equal to the
  /// single-column call. The point is instruction-level parallelism:
  /// one column is a serial double-add chain (~4-cycle latency per
  /// row), but four independent chains pipeline through the FP adders
  /// and roughly quadruple the hot loop's throughput.
  void accumulate_columns_fused4(const float* w0, const float* w1,
                                 const float* w2, const float* w3,
                                 const float* x, std::size_t n,
                                 float out[4]) const {
    const double inv_n = 1.0 / static_cast<double>(n);
    double ca0 = 0.0, ca1 = 0.0, ca2 = 0.0, ca3 = 0.0;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const float xk = x[k];
      const float c0 = w0[k] * xk;
      const float c1 = w1[k] * xk;
      const float c2 = w2[k] * xk;
      const float c3 = w3[k] * xk;
      ca0 += std::fabs(c0);
      a0 += static_cast<double>(c0) * (1.0 - kappa_ * ca0 * inv_n);
      ca1 += std::fabs(c1);
      a1 += static_cast<double>(c1) * (1.0 - kappa_ * ca1 * inv_n);
      ca2 += std::fabs(c2);
      a2 += static_cast<double>(c2) * (1.0 - kappa_ * ca2 * inv_n);
      ca3 += std::fabs(c3);
      a3 += static_cast<double>(c3) * (1.0 - kappa_ * ca3 * inv_n);
    }
    out[0] = static_cast<float>(a0);
    out[1] = static_cast<float>(a1);
    out[2] = static_cast<float>(a2);
    out[3] = static_cast<float>(a3);
  }

 private:
  static constexpr float kBaseDrop = 0.05f;
  float scale_ = 0.0f;
  int n_rows_ = 512;
  float kappa_ = 0.0f;
};

}  // namespace nora::noise
