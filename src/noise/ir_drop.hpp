// IR-drop along bitlines (paper Table I: "wire resistance non-ideality").
//
// Current accumulates along each bitline toward the ADC; wire resistance
// makes the effective read-out of far rows slightly weaker, and the
// attenuation grows with the total current already flowing in the line.
// First-order model for column j with per-row contributions I_k = w_hat_kj
// * x_hat_k (rows ordered by distance from the ADC):
//
//   y_j = sum_k I_k * (1 - kappa * C_k / n_rows),   C_k = sum_{k' <= k} |I_k'|
//
// kappa = kBaseDrop * scale * (n_rows / 512): the deviation grows with
// physical line length, matching AIHWKIT's size-dependent ir_drop model,
// and `scale` is the Table II "ir_drop" knob (1.0 = nominal).
#pragma once

#include <span>

namespace nora::noise {

class IrDropModel {
 public:
  explicit IrDropModel(float scale = 0.0f, int n_rows = 512);

  bool enabled() const { return scale_ > 0.0f; }
  float scale() const { return scale_; }
  float kappa() const { return kappa_; }

  /// Accumulate one column: returns the IR-drop-distorted dot product of
  /// per-row contributions (w_hat_kj * x_hat_k), streamed in row order.
  /// contributions[k] = w_hat_kj * x_hat_k.
  float accumulate_column(std::span<const float> contributions) const;

 private:
  static constexpr float kBaseDrop = 0.05f;
  float scale_ = 0.0f;
  int n_rows_ = 512;
  float kappa_ = 0.0f;
};

}  // namespace nora::noise
