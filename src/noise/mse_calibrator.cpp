#include "noise/mse_calibrator.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::noise {

MseCalibrator::MseCalibrator(MseFn fn, MseCalibratorOptions opts)
    : fn_(std::move(fn)), opts_(opts) {
  if (!fn_) throw std::invalid_argument("MseCalibrator: null function");
}

double MseCalibrator::solve(double target_mse) const {
  if (target_mse <= 0.0) {
    throw std::invalid_argument("MseCalibrator: target must be > 0");
  }
  double lo = opts_.param_lo;
  double hi = opts_.param_hi;
  double mse_hi = fn_(hi);
  // Expand the upper bracket until it overshoots the target.
  int expand = 0;
  while (mse_hi < target_mse && expand++ < 40) {
    hi *= 2.0;
    mse_hi = fn_(hi);
  }
  double mse_lo = fn_(lo);
  if (mse_lo > target_mse || mse_hi < target_mse) {
    throw std::runtime_error("MseCalibrator: cannot bracket target MSE");
  }
  // Bisection in log-parameter space (noise->MSE maps span decades).
  double best = hi;
  for (int i = 0; i < opts_.max_iters; ++i) {
    const double mid = std::sqrt(lo * hi);
    const double mse = fn_(mid);
    best = mid;
    if (std::fabs(mse - target_mse) / target_mse < opts_.rel_tol) return mid;
    if (mse < target_mse) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace nora::noise
