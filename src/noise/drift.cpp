#include "noise/drift.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::noise {

Matrix PcmDriftModel::sample_exponents(std::int64_t rows, std::int64_t cols,
                                       util::Rng& rng) const {
  Matrix nu(rows, cols);
  float* p = nu.data();
  for (std::int64_t i = 0; i < nu.size(); ++i) {
    p[i] = std::max(0.0f, static_cast<float>(rng.gaussian(cfg_.nu_mean, cfg_.nu_sigma)));
  }
  return nu;
}

float PcmDriftModel::decay(float nu, float t_seconds) const {
  if (t_seconds <= cfg_.t0) return 1.0f;
  return std::pow(t_seconds / cfg_.t0, -nu);
}

float PcmDriftModel::compensation(float t_seconds) const {
  if (!cfg_.compensate) return 1.0f;
  return decay(cfg_.nu_mean, t_seconds);
}

void PcmDriftModel::apply(Matrix& w_hat, const Matrix& exponents,
                          float t_seconds) const {
  if (!w_hat.same_shape(exponents)) {
    throw std::invalid_argument("PcmDriftModel::apply: shape mismatch");
  }
  const float comp = compensation(t_seconds);
  float* w = w_hat.data();
  const float* nu = exponents.data();
  for (std::int64_t i = 0; i < w_hat.size(); ++i) {
    w[i] *= decay(nu[i], t_seconds) / comp;
  }
}

float PcmDriftModel::read_noise_sigma(float t_seconds) const {
  if (cfg_.sigma_1f <= 0.0f) return 0.0f;
  const float t = std::max(t_seconds, cfg_.t0);
  return cfg_.sigma_1f *
         std::sqrt(std::log((t + cfg_.t0) / (2.0f * cfg_.t0)) + 1.0f);
}

}  // namespace nora::noise
