#include "noise/read_noise.hpp"

namespace nora::noise {

void ShortTermReadNoise::apply_to_outputs(std::span<float> y, float x_l2_norm,
                                          util::Rng& rng) const {
  if (!enabled()) return;
  const double s = static_cast<double>(sigma_) * x_l2_norm;
  for (auto& v : y) v += static_cast<float>(rng.gaussian(0.0, s));
}

Matrix ShortTermReadNoise::perturbed_weights(const Matrix& w_hat,
                                             util::Rng& rng) const {
  Matrix out = w_hat;
  if (!enabled()) return out;
  float* p = out.data();
  for (std::int64_t i = 0; i < out.size(); ++i) {
    p[i] += static_cast<float>(rng.gaussian(0.0, sigma_));
  }
  return out;
}

}  // namespace nora::noise
