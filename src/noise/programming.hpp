// PCM weight-programming noise (paper Table I: "weight fabrication
// non-ideality"; Eq. 2 in Sec. II-B).
//
// When a weight is written into a PCM device via write-verify, the
// achieved conductance deviates from the target. Following the
// PCM-like noise model used by AIHWKIT [Nandakumar et al., IEDM'20],
// the deviation is Gaussian with a conductance-dependent standard
// deviation, quadratic in the normalized target conductance g_hat:
//
//   sigma(g_hat) = scale * (c0 + c1*g_hat + c2*g_hat^2)
//
// with (c0, c1, c2) = (0.26348, 1.9650, -1.1731) muS at g_max = 25 muS,
// i.e. (0.010539, 0.078600, -0.046924) in normalized units.
#pragma once

#include <cmath>
#include <stdexcept>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace nora::noise {

class ProgrammingNoise {
 public:
  /// scale = 0 disables; scale = 1 is the nominal PCM model.
  explicit ProgrammingNoise(float scale = 0.0f) : scale_(scale) {
    if (!std::isfinite(scale) || scale < 0.0f) {
      throw std::invalid_argument("ProgrammingNoise: scale must be finite and >= 0");
    }
  }

  bool enabled() const { return scale_ > 0.0f; }
  float scale() const { return scale_; }

  /// Std-dev of the programming error for a normalized weight in [-1, 1].
  float sigma(float w_hat) const;

  /// Programming error after `iters` rounds of write-verify
  /// [Buechel'23, Mackin'22]: each round reads the device and corrects
  /// toward the target; the residual shrinks geometrically toward a
  /// floor set by the programming-pulse granularity (~30% of the
  /// single-shot sigma). iters = 1 is single-shot programming.
  float residual_error(float target, int iters, util::Rng& rng) const;

  /// One closed-loop reprogramming round (the program-verify-reprogram
  /// retry path): read back the current error and issue a corrective
  /// pulse, attenuating it exactly like one write-verify iteration.
  /// Returns the new programming error.
  float correct(float current_error, float target, util::Rng& rng) const;

  /// Perturb a whole matrix of normalized weights in place (applied once,
  /// at program time), with optional write-verify iterations.
  void apply(Matrix& w_hat, util::Rng& rng, int write_verify_iters = 1) const;

 private:
  float scale_ = 0.0f;
};

}  // namespace nora::noise
