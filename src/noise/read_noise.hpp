// Short-term (cycle-to-cycle) weight read noise (paper Table I).
//
// Each analog MVM reads every conductance with an independent Gaussian
// perturbation of std-dev w_noise (Table II: 0.0175, relative to g_max).
// For output j:  y_j = sum_k (w_hat_kj + eps_kj) * x_hat_k
//              = sum_k w_hat_kj x_hat_k  +  N(0, w_noise * ||x_hat||_2).
// The class offers both the exact per-element form and the statistically
// identical aggregated form (the default — one Gaussian per output),
// which is what the tile uses for speed. Their equivalence is unit-tested.
#pragma once

#include <cmath>
#include <span>
#include <stdexcept>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace nora::noise {

class ShortTermReadNoise {
 public:
  explicit ShortTermReadNoise(float sigma = 0.0f) : sigma_(sigma) {
    if (!std::isfinite(sigma) || sigma < 0.0f) {
      throw std::invalid_argument("ShortTermReadNoise: sigma must be finite and >= 0");
    }
  }

  bool enabled() const { return sigma_ > 0.0f; }
  float sigma() const { return sigma_; }

  /// Aggregated form: perturb the outputs of one MVM given ||x_hat||_2.
  void apply_to_outputs(std::span<float> y, float x_l2_norm,
                        util::Rng& rng) const;

  /// Exact form: return a per-element perturbed copy of the weights
  /// (one fresh sample per read). Used by tests and the reference path.
  Matrix perturbed_weights(const Matrix& w_hat, util::Rng& rng) const;

 private:
  float sigma_ = 0.0f;
};

}  // namespace nora::noise
