// S-shape device nonlinearity (paper Table I, Fig. 3g).
//
// Models the compressive transfer curve of the analog input path:
// f(x) = tanh(k*x) / tanh(k) on the normalized domain [-1, 1].
// k -> 0 recovers the identity; larger k compresses large inputs.
#pragma once

#include <cmath>
#include <span>

namespace nora::noise {

class SShapeNonlinearity {
 public:
  explicit SShapeNonlinearity(float k = 0.0f);

  bool enabled() const { return k_ > 0.0f; }
  float k() const { return k_; }

  /// Inline so the (common) disabled case is a branch, not a call, on
  /// the per-element analog input path.
  float apply(float x) const {
    if (!enabled()) return x;
    return std::tanh(k_ * x) * inv_tanh_k_;
  }
  void apply(std::span<float> xs) const {
    if (!enabled()) return;
    for (auto& x : xs) x = apply(x);
  }

 private:
  float k_ = 0.0f;
  float inv_tanh_k_ = 1.0f;
};

}  // namespace nora::noise
