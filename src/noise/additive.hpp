// Additive system Gaussian noise at the tile I/O interface.
//
// Paper Table I: "Additive input noise" / "Additive output noise" are
// zero-mean Gaussian perturbations injected by mixed-signal components
// (mostly the ADCs, per Sec. IV). They act in the *normalized* analog
// domain, so their effect in real units scales with alpha*gamma — which
// is exactly the lever NORA pulls.
#pragma once

#include <cmath>
#include <span>
#include <stdexcept>

#include "util/rng.hpp"

namespace nora::noise {

class AdditiveGaussian {
 public:
  explicit AdditiveGaussian(float sigma = 0.0f) : sigma_(sigma) {
    if (!std::isfinite(sigma) || sigma < 0.0f) {
      throw std::invalid_argument("AdditiveGaussian: sigma must be finite and >= 0");
    }
  }

  bool enabled() const { return sigma_ > 0.0f; }
  float sigma() const { return sigma_; }

  float apply(float x, util::Rng& rng) const {
    return enabled() ? x + static_cast<float>(rng.gaussian(0.0, sigma_)) : x;
  }
  void apply(std::span<float> xs, util::Rng& rng) const {
    if (!enabled()) return;
    for (auto& x : xs) x += static_cast<float>(rng.gaussian(0.0, sigma_));
  }

 private:
  float sigma_ = 0.0f;
};

}  // namespace nora::noise
