// Uniform quantizer modelling DAC (input) and ADC (output) conversion.
//
// Paper Table II: in_res = out_res = 7 bit (128 steps). Values are
// quantized over a symmetric bound [-bound, +bound]; anything outside
// saturates to the bound (ADC saturation / input clipping in the paper).
#pragma once

#include <cstdint>
#include <span>

namespace nora::noise {

class UniformQuantizer {
 public:
  /// steps == 0 disables quantization (ideal converter).
  /// bound is the full-scale range; step size = 2*bound/steps.
  /// Fractional step counts are allowed so MSE-matched sensitivity
  /// sweeps (Fig. 3) can treat converter resolution as a continuous knob.
  UniformQuantizer(float steps, float bound);

  static UniformQuantizer ideal() { return UniformQuantizer(0.0f, 1.0f); }
  static UniformQuantizer from_bits(int bits, float bound) {
    return UniformQuantizer(bits > 0 ? static_cast<float>(1 << bits) : 0.0f,
                            bound);
  }

  bool enabled() const { return steps_ > 0.0f; }
  float steps() const { return steps_; }
  float bound() const { return bound_; }
  float step_size() const { return enabled() ? 2.0f * bound_ / steps_ : 0.0f; }

  /// Quantize one value (round-to-nearest level, saturate at +-bound).
  float quantize(float x) const;
  void apply(std::span<float> xs) const;

  /// True if |x| saturates the converter.
  bool saturates(float x) const;

 private:
  float steps_ = 0.0f;
  float bound_ = 1.0f;
};

}  // namespace nora::noise
