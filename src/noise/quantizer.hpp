// Uniform quantizer modelling DAC (input) and ADC (output) conversion.
//
// Paper Table II: in_res = out_res = 7 bit (128 steps). Values are
// quantized over a symmetric bound [-bound, +bound]; anything outside
// saturates to the bound (ADC saturation / input clipping in the paper).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

namespace nora::noise {

class UniformQuantizer {
 public:
  /// steps == 0 disables quantization (ideal converter).
  /// bound is the full-scale range; step size = 2*bound/steps.
  /// Fractional step counts are allowed so MSE-matched sensitivity
  /// sweeps (Fig. 3) can treat converter resolution as a continuous knob.
  UniformQuantizer(float steps, float bound);

  static UniformQuantizer ideal() { return UniformQuantizer(0.0f, 1.0f); }
  static UniformQuantizer from_bits(int bits, float bound) {
    return UniformQuantizer(bits > 0 ? static_cast<float>(1 << bits) : 0.0f,
                            bound);
  }

  bool enabled() const { return steps_ > 0.0f; }
  float steps() const { return steps_; }
  float bound() const { return bound_; }
  float step_size() const { return enabled() ? 2.0f * bound_ / steps_ : 0.0f; }

  /// round-half-away-from-zero without the roundf libcall: trunc maps to
  /// a single rounding instruction, and for |y| < 2^24 both y - t and
  /// t ± 1 are exact, so this returns std::round(y)'s bits for every
  /// float (|y| >= 2^24 is already integral). The ADC path calls this
  /// once per column per MVM, where a PLT call is measurable.
  static float round_half_away(float y) {
    const float t = std::trunc(y);
    return std::fabs(y - t) >= 0.5f ? t + std::copysign(1.0f, y) : t;
  }

  /// Quantize one value (round-to-nearest level, saturate at +-bound).
  /// Inline: called once per ADC read / DAC sample on the analog hot
  /// path, so an out-of-line call per element is measurable.
  float quantize(float x) const {
    if (!enabled()) return x;
    const float half = steps_ / 2.0f;
    // Mid-tread uniform quantizer with saturation: levels are k * step,
    // k in [-steps/2, steps/2 - 1] — exactly `steps` codes, two's-
    // complement style, with zero always representable. Clamping at +half
    // would admit steps+1 codes, one more than the converter's bit width
    // can encode.
    float q = round_half_away(x / bound_ * half);
    q = std::clamp(q, -half, half - 1.0f);
    return q * bound_ / half;
  }
  void apply(std::span<float> xs) const {
    if (!enabled()) return;
    for (auto& x : xs) x = quantize(x);
  }

  /// True if |x| saturates the converter.
  bool saturates(float x) const { return enabled() && std::fabs(x) >= bound_; }

 private:
  float steps_ = 0.0f;
  float bound_ = 1.0f;
};

}  // namespace nora::noise
