#include "noise/programming.hpp"

#include <cmath>

namespace nora::noise {

namespace {
// PCM-like polynomial coefficients, normalized to g_max = 1.
constexpr float kC0 = 0.26348f / 25.0f;
constexpr float kC1 = 1.96500f / 25.0f;
constexpr float kC2 = -1.17310f / 25.0f;
// Residual left by one corrective write-verify pulse, as a fraction of
// the pre-pulse error (pulse granularity floor).
constexpr float kVerifyAttenuation = 0.3f;
}  // namespace

float ProgrammingNoise::sigma(float w_hat) const {
  if (!enabled()) return 0.0f;
  const float g = std::fabs(w_hat);  // target conductance of the active device
  const float s = kC0 + kC1 * g + kC2 * g * g;
  return scale_ * std::max(s, 0.0f);
}

float ProgrammingNoise::correct(float current_error, float target,
                                util::Rng& rng) const {
  if (!enabled()) return current_error;
  return kVerifyAttenuation * current_error +
         static_cast<float>(
             rng.gaussian(0.0, kVerifyAttenuation * sigma(target)));
}

float ProgrammingNoise::residual_error(float target, int iters,
                                       util::Rng& rng) const {
  if (!enabled()) return 0.0f;
  const float s = sigma(target);
  float err = static_cast<float>(rng.gaussian(0.0, s));
  for (int it = 1; it < iters; ++it) {
    err = kVerifyAttenuation * err +
          static_cast<float>(rng.gaussian(0.0, kVerifyAttenuation * s));
  }
  return err;
}

void ProgrammingNoise::apply(Matrix& w_hat, util::Rng& rng,
                             int write_verify_iters) const {
  if (!enabled()) return;
  float* p = w_hat.data();
  for (std::int64_t i = 0; i < w_hat.size(); ++i) {
    p[i] += residual_error(p[i], write_verify_iters, rng);
  }
}

}  // namespace nora::noise
