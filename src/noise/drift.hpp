// PCM conductance drift (paper Sec. II-B Eq. 2 and the "Limitations"
// experiment: accuracy re-measured one hour after programming).
//
// PCM conductance decays as a power law after programming:
//   g(t) = g(t0) * (t / t0)^(-nu),    t >= t0,
// with a per-device drift exponent nu ~ N(nu_mean, nu_sigma) (clamped at
// 0) [Le Gallo & Sebastian, J.Phys.D 2020]. 1/f read noise also grows
// slowly with time; we model it as an extra Gaussian read perturbation
// with std-dev sigma_1f * sqrt(log((t+t_read)/(2*t_read))).
//
// Global drift compensation (standard practice, also in AIHWKIT)
// divides the output by the *mean* decay factor (t/t0)^(-nu_mean);
// residual error comes from per-device spread around the mean.
#pragma once

#include <cmath>
#include <stdexcept>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace nora::noise {

struct DriftConfig {
  float nu_mean = 0.05f;   // nominal PCM drift exponent
  float nu_sigma = 0.02f;  // device-to-device spread
  float t0 = 20.0f;        // programming-to-first-read reference time [s]
  float sigma_1f = 0.0f;   // 1/f read-noise scale (0 disables)
  bool compensate = true;  // apply global drift compensation
};

class PcmDriftModel {
 public:
  explicit PcmDriftModel(const DriftConfig& cfg = {}) : cfg_(cfg) {
    if (!std::isfinite(cfg.nu_mean) || !std::isfinite(cfg.nu_sigma) ||
        !std::isfinite(cfg.t0) || !std::isfinite(cfg.sigma_1f)) {
      throw std::invalid_argument("PcmDriftModel: non-finite drift parameter");
    }
    if (cfg.nu_sigma < 0.0f || cfg.sigma_1f < 0.0f) {
      throw std::invalid_argument("PcmDriftModel: negative noise scale");
    }
    if (cfg.t0 <= 0.0f) {
      throw std::invalid_argument("PcmDriftModel: t0 must be > 0");
    }
  }

  const DriftConfig& config() const { return cfg_; }

  /// Sample one drift exponent per device (same shape as the weights).
  Matrix sample_exponents(std::int64_t rows, std::int64_t cols,
                          util::Rng& rng) const;

  /// Decay factor (t/t0)^(-nu) for a single device. t < t0 returns 1.
  float decay(float nu, float t_seconds) const;

  /// Global compensation factor at time t (1 if compensation disabled).
  float compensation(float t_seconds) const;

  /// Apply drift at time t to programmed weights in place, including the
  /// compensation divide. exponents must match w's shape.
  void apply(Matrix& w_hat, const Matrix& exponents, float t_seconds) const;

  /// Extra 1/f read-noise std-dev at time t (normalized units).
  float read_noise_sigma(float t_seconds) const;

 private:
  DriftConfig cfg_;
};

}  // namespace nora::noise
