#include "timing/hw_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "timing/event_clock.hpp"
#include "timing/resource.hpp"

namespace nora::timing {

namespace {

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }
bool finite_pos(double v) { return std::isfinite(v) && v > 0.0; }

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

void check_op(const TimingOp& op) {
  if (op.rows <= 0 || op.k <= 0 || op.n <= 0 || op.row_blocks <= 0 ||
      op.col_blocks <= 0 || op.macs < 0 || op.chip < 0 || op.tp_chips < 1) {
    throw std::invalid_argument("HwModel: malformed timing op for layer '" +
                                op.layer + "'");
  }
}

}  // namespace

void TimingConfig::validate() const {
  if (pipeline_depth < 1) {
    throw std::invalid_argument("timing: pipeline_depth must be >= 1, got " +
                                std::to_string(pipeline_depth));
  }
  if (!finite_nonneg(dac_frac) || !finite_nonneg(xbar_frac) ||
      dac_frac + xbar_frac >= 1.0) {
    throw std::invalid_argument(
        "timing: stage fractions must be finite, >= 0 and sum below 1 "
        "(the ADC share is the remainder)");
  }
  if (!finite_pos(link_bytes_per_ns)) {
    throw std::invalid_argument("timing: link_bytes_per_ns must be finite "
                                "and > 0");
  }
  if (!finite_pos(costs.tile_read_latency_ns) ||
      !finite_pos(costs.digital_macs_per_ns) ||
      !finite_pos(costs.dram_bytes_per_ns)) {
    throw std::invalid_argument(
        "timing: tile_read_latency_ns, digital_macs_per_ns and "
        "dram_bytes_per_ns must be finite and > 0");
  }
  if (!finite_nonneg(costs.chip_link_latency_ns) ||
      !finite_pos(costs.chip_link_bytes_per_ns)) {
    throw std::invalid_argument(
        "timing: chip_link_latency_ns must be finite and >= 0, "
        "chip_link_bytes_per_ns finite and > 0");
  }
}

HwModel::HwModel(const TimingConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  tile_ps_ = std::llround(cfg_.costs.tile_read_latency_ns * 1000.0);
  if (tile_ps_ <= 0) {
    throw std::invalid_argument("timing: tile read rounds to <= 0 ps");
  }
  dac_ps_ = std::llround(static_cast<double>(tile_ps_) * cfg_.dac_frac);
  xbar_ps_ = std::llround(static_cast<double>(tile_ps_) * cfg_.xbar_frac);
  // ADC takes the remainder so the three stages sum to the analytic
  // constant exactly — the degenerate-case reconciliation depends on it.
  adc_ps_ = tile_ps_ - dac_ps_ - xbar_ps_;
}

std::int64_t HwModel::analog_op_ps(const TimingOp& op,
                                   std::int64_t* events_out) const {
  check_op(op);
  if (op.tp_chips > 1 && op.tp_axis != ShardAxis::kNone) {
    // Tensor-parallel op: every chip runs the ceil-split sub-grid
    // concurrently (op latency = the identical per-chip DES), then the
    // chips exchange results over the inter-chip link. Effective width
    // never exceeds the split axis extent — surplus chips hold no tiles.
    const std::int64_t extent = op.tp_axis == ShardAxis::kRowBlocks
                                    ? op.row_blocks
                                    : op.col_blocks;
    const std::int64_t tc =
        std::min<std::int64_t>(op.tp_chips, std::max<std::int64_t>(1, extent));
    TimingOp sub = op;
    sub.tp_chips = 1;
    sub.tp_axis = ShardAxis::kNone;
    if (op.tp_axis == ShardAxis::kRowBlocks) {
      sub.row_blocks = ceil_div(op.row_blocks, tc);
    } else {
      sub.col_blocks = ceil_div(op.col_blocks, tc);
      sub.n = ceil_div(op.n, tc);
    }
    std::int64_t ps = analog_op_ps(sub, events_out);
    if (tc > 1) {
      // Row split all-reduces full-width fp32 partials in ceil(log2 tc)
      // rounds; a column split reassembles the disjoint slices in one
      // gather. Charged per token, serialized after the compute.
      std::int64_t rounds = 1;
      if (op.tp_axis == ShardAxis::kRowBlocks) {
        rounds = 0;
        for (std::int64_t span = 1; span < tc; span *= 2) ++rounds;
      }
      const double bytes = static_cast<double>(op.n) * 4.0;
      const double hop_ns = cfg_.costs.chip_link_latency_ns +
                            bytes / cfg_.costs.chip_link_bytes_per_ns;
      ps += op.rows * rounds * std::llround(hop_ns * 1000.0);
    }
    return ps;
  }
  const std::int64_t tokens = op.rows;
  const std::int64_t R = op.row_blocks;
  const std::int64_t C = op.col_blocks;
  const std::int64_t depth = cfg_.pipeline_depth;

  // Partial-sum transfer per (row block > 0, column block): one fp32 per
  // output column of that block. Column widths are reconstructed from the
  // even n / col_blocks partition the tile grid uses.
  const std::int64_t base_cols = ceil_div(op.n, C);
  std::vector<std::int64_t> link_ps_by_col(static_cast<std::size_t>(C));
  for (std::int64_t c = 0; c < C; ++c) {
    const std::int64_t width =
        std::min(base_cols, op.n - c * base_cols) > 0
            ? std::min(base_cols, op.n - c * base_cols)
            : base_cols;
    const double ns = static_cast<double>(width) * 4.0 / cfg_.link_bytes_per_ns;
    link_ps_by_col[static_cast<std::size_t>(c)] = std::llround(ns * 1000.0);
  }

  EventClock clock;
  std::vector<Resource> dac(static_cast<std::size_t>(R));
  std::vector<Resource> tile(static_cast<std::size_t>(R * C));
  std::vector<Resource> adc(static_cast<std::size_t>(C));
  Resource link;

  std::vector<std::int64_t> remaining(static_cast<std::size_t>(tokens), R * C);
  std::int64_t finish_ps = 0;

  // Per-token dataflow: each row block converts the token's input slice
  // (DAC), every tile in the row fires (crossbar), each column group's
  // shared ADC serializes the conversions of its R row blocks, and row
  // blocks beyond the first ship partial sums over the link. A token
  // completes when all R*C tile results have landed; token t + depth
  // issues at that instant (sliding in-flight window of `depth` tokens).
  std::function<void(std::int64_t)> start_token;
  std::function<void(std::int64_t, std::int64_t)> after_dac;
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> after_xbar;
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> after_adc;
  std::function<void(std::int64_t)> land;

  start_token = [&](std::int64_t t) {
    for (std::int64_t r = 0; r < R; ++r) {
      const std::int64_t done =
          dac[static_cast<std::size_t>(r)].acquire(clock.now_ps(), dac_ps_);
      clock.schedule_at(done, [&, t, r] { after_dac(t, r); });
    }
  };
  after_dac = [&](std::int64_t t, std::int64_t r) {
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t done = tile[static_cast<std::size_t>(r * C + c)]
                                    .acquire(clock.now_ps(), xbar_ps_);
      clock.schedule_at(done, [&, t, r, c] { after_xbar(t, r, c); });
    }
  };
  after_xbar = [&](std::int64_t t, std::int64_t r, std::int64_t c) {
    const std::int64_t done =
        adc[static_cast<std::size_t>(c)].acquire(clock.now_ps(), adc_ps_);
    clock.schedule_at(done, [&, t, r, c] { after_adc(t, r, c); });
  };
  after_adc = [&](std::int64_t t, std::int64_t r, std::int64_t c) {
    if (r == 0) {
      land(t);  // row block 0 accumulates in place: no transfer
      return;
    }
    const std::int64_t done = link.acquire(
        clock.now_ps(), link_ps_by_col[static_cast<std::size_t>(c)]);
    clock.schedule_at(done, [&, t] { land(t); });
  };
  land = [&](std::int64_t t) {
    if (--remaining[static_cast<std::size_t>(t)] == 0) {
      finish_ps = std::max(finish_ps, clock.now_ps());
      const std::int64_t next = t + depth;
      if (next < tokens) start_token(next);
    }
  };

  for (std::int64_t t = 0; t < std::min(depth, tokens); ++t) {
    start_token(t);
  }
  clock.run();

  if (events_out != nullptr) *events_out = clock.processed();
  return finish_ps;
}

std::int64_t HwModel::digital_op_ps(const TimingOp& op) const {
  check_op(op);
  const std::int64_t macs =
      op.kind == OpKind::kAttention ? op.macs : op.rows * op.k * op.n;
  // Same compute-vs-weight-stream bound as cost::digital_linear_cost
  // (int8 streams 1 byte/weight, attention streams no weights) — kept in
  // lock-step by test_cost_sim_consistency.
  const double bytes_per_weight = op.kind == OpKind::kInt8Gemm ? 1.0
                                  : op.kind == OpKind::kAttention
                                      ? 0.0
                                      : 4.0;
  const double weight_bytes = static_cast<double>(op.k * op.n) * bytes_per_weight;
  const double compute_ns =
      static_cast<double>(macs) / cfg_.costs.digital_macs_per_ns;
  const double mem_ns = weight_bytes / cfg_.costs.dram_bytes_per_ns;
  return std::llround(std::max(compute_ns, mem_ns) * 1000.0);
}

std::int64_t HwModel::op_ps(const TimingOp& op,
                            std::int64_t* events_out) const {
  if (op.kind == OpKind::kAnalogMvm) return analog_op_ps(op, events_out);
  if (events_out != nullptr) *events_out = 0;
  return digital_op_ps(op);
}

StepTiming HwModel::replay(const Trace& trace) const {
  StepTiming st;
  for (const TimingOp& op : trace.ops) {
    std::int64_t events = 0;
    const std::int64_t ps = op_ps(op, &events);
    st.total_ps += ps;
    st.events += events;
    LayerTiming* entry = nullptr;
    for (LayerTiming& lt : st.layers) {
      if (lt.layer == op.layer) {
        entry = &lt;
        break;
      }
    }
    if (entry == nullptr) {
      st.layers.push_back(LayerTiming{op.layer, 0, 0});
      entry = &st.layers.back();
    }
    entry->ps += ps;
    entry->ops += 1;
  }
  return st;
}

StepTiming HwModel::replay_pipelined(const Trace& trace) const {
  StepTiming st;
  if (trace.ops.empty()) return st;
  // Token-granular microbatches: the batch's rows flow through the chip
  // pipeline one token-slice at a time. M is the widest op's row count,
  // so a decode step over B sequences pipelines B microbatches.
  std::int64_t M = 1;
  for (const TimingOp& op : trace.ops) M = std::max(M, op.rows);

  const std::size_t n_ops = trace.ops.size();
  std::vector<std::int64_t> mb_ps(n_ops);     // per-microbatch op latency
  std::vector<std::int64_t> out_link(n_ops);  // per-mb transfer after op i
  std::int64_t max_chip = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    const TimingOp& op = trace.ops[i];
    TimingOp sub = op;
    sub.rows = ceil_div(std::max<std::int64_t>(1, op.rows), M);
    sub.macs = ceil_div(op.macs, M);
    std::int64_t events = 0;
    mb_ps[i] = op_ps(sub, &events);
    st.events += events;
    max_chip = std::max<std::int64_t>(max_chip, op.chip);
    if (i > 0 && trace.ops[i - 1].chip != op.chip) {
      // Pipeline boundary: ship the microbatch activations feeding op i
      // (rows_mb x k fp32) over the inter-chip link.
      const double bytes = static_cast<double>(sub.rows) *
                           static_cast<double>(op.k) * 4.0;
      const double hop_ns = cfg_.costs.chip_link_latency_ns +
                            bytes / cfg_.costs.chip_link_bytes_per_ns;
      out_link[i - 1] = std::llround(hop_ns * 1000.0);
      st.link_ps += out_link[i - 1] * M;
      st.link_transfers += M;
    }
    LayerTiming* entry = nullptr;
    for (LayerTiming& lt : st.layers) {
      if (lt.layer == op.layer) {
        entry = &lt;
        break;
      }
    }
    if (entry == nullptr) {
      st.layers.push_back(LayerTiming{op.layer, 0, 0});
      entry = &st.layers.back();
    }
    entry->ps += mb_ps[i] * M;  // attribution = busy time over all mbs
    entry->ops += 1;
  }
  // Makespan = pipeline fill (the first microbatch traverses every op
  // and boundary once) + steady state (each later microbatch advances
  // one bottleneck-chip interval; a chip admits one microbatch at a
  // time, so its interval is its compute plus outbound transfers).
  std::int64_t fill = 0;
  std::vector<std::int64_t> chip_load(static_cast<std::size_t>(max_chip + 1));
  for (std::size_t i = 0; i < n_ops; ++i) {
    fill += mb_ps[i] + out_link[i];
    chip_load[static_cast<std::size_t>(trace.ops[i].chip)] +=
        mb_ps[i] + out_link[i];
  }
  std::int64_t bottleneck = 0;
  for (std::int64_t load : chip_load) bottleneck = std::max(bottleneck, load);
  st.total_ps = fill + (M - 1) * bottleneck;
  return st;
}

}  // namespace nora::timing
