// Discrete-event simulation kernel for the hardware timing co-simulator.
//
// Determinism contract: events dispatch in (timestamp, schedule order) —
// ties broken by a monotonically increasing sequence number — so replaying
// the same schedule calls is bit-identical on any host, independent of
// thread count. The clock is single-threaded by design: instrumented code
// emits a trace on the serving thread and the replay happens after the
// fact, so no host-side concurrency can reorder events. Timestamps are
// integer picoseconds: no float accumulation, no platform-dependent
// rounding.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace nora::timing {

class EventClock {
 public:
  using Handler = std::function<void()>;

  std::int64_t now_ps() const { return now_ps_; }

  /// Schedule `fn` at absolute time `t_ps`. Scheduling in the past throws
  /// std::invalid_argument (simulated time cannot move backwards);
  /// t_ps == now_ps() is allowed — a zero-duration event dispatches after
  /// already-queued events at the same timestamp and cannot spin the
  /// clock backwards.
  void schedule_at(std::int64_t t_ps, Handler fn);
  /// Schedule `fn` at now_ps() + dt_ps. Negative dt_ps throws.
  void schedule_after(std::int64_t dt_ps, Handler fn);

  /// Dispatch events in (time, seq) order until the queue is empty and
  /// return the final clock value. Handlers may schedule further events.
  std::int64_t run();
  /// Dispatch a single event; returns false when the queue is empty.
  bool step();

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::int64_t processed() const { return processed_; }

 private:
  struct Event {
    std::int64_t t_ps = 0;
    std::uint64_t seq = 0;
    Handler fn;
  };
  // Min-heap: std::push_heap/pop_heap keep the earliest (t, seq) at front.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t_ps != b.t_ps) return a.t_ps > b.t_ps;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::int64_t now_ps_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int64_t processed_ = 0;
};

}  // namespace nora::timing
