#include "timing/event_clock.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace nora::timing {

void EventClock::schedule_at(std::int64_t t_ps, Handler fn) {
  if (t_ps < now_ps_) {
    throw std::invalid_argument("EventClock: schedule_at t=" +
                                std::to_string(t_ps) + "ps is before now=" +
                                std::to_string(now_ps_) + "ps");
  }
  if (!fn) {
    throw std::invalid_argument("EventClock: null handler");
  }
  heap_.push_back(Event{t_ps, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventClock::schedule_after(std::int64_t dt_ps, Handler fn) {
  if (dt_ps < 0) {
    throw std::invalid_argument("EventClock: negative delay " +
                                std::to_string(dt_ps) + "ps");
  }
  schedule_at(now_ps_ + dt_ps, std::move(fn));
}

bool EventClock::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ps_ = ev.t_ps;  // never decreases: schedule_at rejects the past
  ++processed_;
  ev.fn();
  return true;
}

std::int64_t EventClock::run() {
  while (step()) {
  }
  return now_ps_;
}

}  // namespace nora::timing
