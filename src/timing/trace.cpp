#include "timing/trace.hpp"

namespace nora::timing {

namespace {
thread_local Trace* g_active_trace = nullptr;
}  // namespace

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kAnalogMvm:
      return "analog_mvm";
    case OpKind::kDigitalGemm:
      return "digital_gemm";
    case OpKind::kInt8Gemm:
      return "int8_gemm";
    case OpKind::kAttention:
      return "attention";
  }
  return "unknown";
}

Trace* active_trace() { return g_active_trace; }

Trace* set_active_trace(Trace* trace) {
  Trace* prev = g_active_trace;
  g_active_trace = trace;
  return prev;
}

}  // namespace nora::timing
