// Single-server FIFO resource on the EventClock timeline. DAC banks, tile
// MVM pipelines, shared ADC column groups and inter-tile transfer links are
// all instances of the same contention model: a request that arrives while
// the server is busy waits until the previous grant drains. Because grants
// are issued in event-dispatch order and the clock dispatches in (time,
// seq) order, the queueing discipline is FIFO and fully deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace nora::timing {

class Resource {
 public:
  /// Claim the resource for `dur_ps` starting no earlier than `ready_ps`;
  /// returns the completion time. Zero-duration grants are legal (a stage
  /// whose configured fraction is zero) and leave the server free at the
  /// same instant.
  std::int64_t acquire(std::int64_t ready_ps, std::int64_t dur_ps) {
    if (ready_ps < 0 || dur_ps < 0) {
      throw std::invalid_argument("Resource: negative time (ready=" +
                                  std::to_string(ready_ps) + "ps dur=" +
                                  std::to_string(dur_ps) + "ps)");
    }
    const std::int64_t start = std::max(free_at_ps_, ready_ps);
    free_at_ps_ = start + dur_ps;
    busy_ps_ += dur_ps;
    ++grants_;
    return free_at_ps_;
  }

  std::int64_t free_at_ps() const { return free_at_ps_; }
  std::int64_t busy_ps() const { return busy_ps_; }
  std::int64_t grants() const { return grants_; }

 private:
  std::int64_t free_at_ps_ = 0;
  std::int64_t busy_ps_ = 0;
  std::int64_t grants_ = 0;
};

}  // namespace nora::timing
