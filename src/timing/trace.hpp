// Operation trace for the timing co-simulator.
//
// The execution path (nn::Linear, nn::CausalSelfAttention) records one
// TimingOp per pass into the thread-local active trace — shape metadata
// only, never tensor data. Ops are emitted from the thread that drives the
// forward pass (the scheduler's step thread), never from thread-pool
// workers, so the trace is a pure function of the workload and identical
// at any host thread count. With no trace installed (the default, and
// whenever timing.enabled=false) record() is a null-check and return:
// a strict no-op on the data path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nora::timing {

enum class OpKind : std::uint8_t {
  kAnalogMvm = 0,   // analog tile-grid matmul (DAC -> crossbar -> ADC)
  kDigitalGemm,     // fp32 digital GEMM (native digital or bypass fallback)
  kInt8Gemm,        // int8 quantized GEMM
  kAttention,       // digital attention score/context arithmetic
};

const char* to_string(OpKind kind);

/// Tensor-parallel partitioning of one analog op across chips (stamped
/// from the layer's cim::ShardPlan axis; kNone for unsharded ops).
enum class ShardAxis : std::uint8_t {
  kNone = 0,
  kRowBlocks,  // row split: chips all-reduce full-width fp32 partials
  kColBlocks,  // column split: chips gather disjoint output columns
};

struct TimingOp {
  OpKind kind = OpKind::kDigitalGemm;
  std::string layer;          // e.g. "block0.attn.qkv"
  std::int64_t rows = 0;      // batch rows (tokens) through the op
  std::int64_t k = 0;         // input features
  std::int64_t n = 0;         // output features
  std::int64_t row_blocks = 1;  // analog tile grid height (1 for digital)
  std::int64_t col_blocks = 1;  // analog tile grid width (1 for digital)
  std::int64_t macs = 0;      // exact MAC count (attention is ragged)
  // Multi-chip placement metadata (defaults describe the single-chip
  // world, so pre-shard traces and tests are unaffected).
  int chip = 0;               // pipeline placement: chip executing the op
  int tp_chips = 1;           // tensor-parallel width across the op
  ShardAxis tp_axis = ShardAxis::kNone;

  bool operator==(const TimingOp&) const = default;
};

struct Trace {
  std::vector<TimingOp> ops;

  void clear() { ops.clear(); }
  bool empty() const { return ops.empty(); }
};

/// The calling thread's active trace, or nullptr when tracing is off.
Trace* active_trace();
/// Install `trace` (may be nullptr) as the calling thread's sink; returns
/// the previous sink so scopes can nest.
Trace* set_active_trace(Trace* trace);

/// Append `op` to the active trace; no-op when none is installed.
inline void record(TimingOp op) {
  Trace* t = active_trace();
  if (t != nullptr) t->ops.push_back(std::move(op));
}

/// RAII installer: restores the previous sink even if the traced forward
/// pass throws.
class ScopedTrace {
 public:
  explicit ScopedTrace(Trace* trace) : prev_(set_active_trace(trace)) {}
  ~ScopedTrace() { set_active_trace(prev_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Trace* prev_;
};

}  // namespace nora::timing
