// Event-driven hardware model: replays a forward-pass Trace against
// resource models of the analog datapath (per-row-block DAC banks, per-tile
// MVM pipelines, shared per-column-group ADCs, inter-tile partial-sum
// links) and returns simulated-hardware latencies.
//
// Reconciliation with cost::cost_model: the stage durations are a split of
// the same DeviceCosts::tile_read_latency_ns constant the analytic model
// charges per token, and the three stage durations sum EXACTLY to
// llround(tile_read_latency_ns * 1000) ps. For a single unpipelined tile
// (row_blocks == col_blocks == pipeline_depth == 1) the event-driven
// latency therefore degenerates to the analytic tokens * tile_read —
// asserted in test_cost_sim_consistency. Digital/int8/attention ops use
// the same compute-vs-weight-stream max() as cost::digital_linear_cost
// (kept in lock-step by the same test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"  // header-only DeviceCosts struct
#include "timing/trace.hpp"

namespace nora::timing {

struct TimingConfig {
  bool enabled = false;   // off = strict no-op on the data path
  // Tokens allowed in flight inside one analog op: token t issues when
  // token t - depth completes. Depth 1 is strictly serial (the analytic
  // degenerate case); larger depths overlap DAC/crossbar/ADC stages of
  // consecutive tokens.
  int pipeline_depth = 1;
  // Split of tile_read_latency_ns across the three stages; the ADC share
  // is the remainder 1 - dac_frac - xbar_frac so the stages always sum to
  // the analytic constant exactly.
  double dac_frac = 0.15;
  double xbar_frac = 0.35;
  // Inter-tile partial-sum link bandwidth (row blocks > 0 ship one fp32
  // partial sum per output column to the accumulator).
  double link_bytes_per_ns = 64.0;
  cost::DeviceCosts costs;

  /// Throws std::invalid_argument on non-finite / out-of-range values.
  void validate() const;
};

struct LayerTiming {
  std::string layer;
  std::int64_t ps = 0;   // summed simulated time attributed to this layer
  std::int64_t ops = 0;  // trace ops replayed for this layer
};

struct StepTiming {
  std::int64_t total_ps = 0;  // simulated duration of the whole step
  std::int64_t events = 0;    // DES events dispatched (replay-exactness probe)
  // Inter-chip link traffic (multi-chip replay only; zero otherwise).
  std::int64_t link_ps = 0;         // total link busy time across transfers
  std::int64_t link_transfers = 0;  // pipeline-boundary activation transfers
  std::vector<LayerTiming> layers;  // first-appearance order
};

class HwModel {
 public:
  /// Validates cfg (throws std::invalid_argument on bad values).
  explicit HwModel(const TimingConfig& cfg);

  const TimingConfig& config() const { return cfg_; }

  // Stage durations (ps); dac + xbar + adc == tile read exactly.
  std::int64_t tile_ps() const { return tile_ps_; }
  std::int64_t dac_ps() const { return dac_ps_; }
  std::int64_t xbar_ps() const { return xbar_ps_; }
  std::int64_t adc_ps() const { return adc_ps_; }

  /// Event-driven latency of one analog MVM op; if `events_out` is
  /// non-null it receives the number of DES events dispatched. Ops with
  /// tp_chips > 1 simulate the per-chip sub-grid (ceil-split along
  /// tp_axis) and add the inter-chip collective: a log2-round all-reduce
  /// of full-width fp32 partials for row splits, a single gather of the
  /// disjoint column slices for column splits, both charged per token at
  /// DeviceCosts::chip_link_{latency_ns, bytes_per_ns}.
  std::int64_t analog_op_ps(const TimingOp& op,
                            std::int64_t* events_out = nullptr) const;
  /// Analytic latency of a digital/int8 GEMM or attention op
  /// (compute-bound vs weight-stream-bound, as cost::digital_linear_cost).
  std::int64_t digital_op_ps(const TimingOp& op) const;
  /// Dispatch on op.kind.
  std::int64_t op_ps(const TimingOp& op,
                     std::int64_t* events_out = nullptr) const;

  /// Replay a whole forward-pass trace: ops execute back-to-back (the
  /// serving step is a single dependent chain through the network), with
  /// per-layer attribution in first-appearance order.
  StepTiming replay(const Trace& trace) const;

  /// Multi-chip pipelined replay: ops carry a chip placement (stamped by
  /// shard::apply_plan via TimingOp::chip) and the step's rows split
  /// into token-granular microbatches that flow through the chip
  /// pipeline — chip c runs microbatch m while chip c' runs m+1, which
  /// is legal dataflow because a token's KV rows are written at a stage
  /// before the next token reaches it. Crossing from one chip to the
  /// next ships the microbatch activations (rows_mb * k * 4 bytes) over
  /// the inter-chip link. Makespan = pipeline fill (every op + crossing
  /// once) + (M - 1) * bottleneck-chip interval; a chip's interval is
  /// its per-microbatch compute plus outbound transfers. With every op
  /// on chip 0 this degenerates to M * (per-microbatch chain) — the
  /// serial replay at microbatch granularity. Per-layer attribution is
  /// total busy time (per-microbatch latency * M).
  StepTiming replay_pipelined(const Trace& trace) const;

 private:
  TimingConfig cfg_;
  std::int64_t tile_ps_ = 0;
  std::int64_t dac_ps_ = 0;
  std::int64_t xbar_ps_ = 0;
  std::int64_t adc_ps_ = 0;
};

}  // namespace nora::timing
