#include "quant/int8_linear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nora::quant {

namespace {
inline float quant8(float v, float inv_scale, std::int64_t& saturations) {
  float q = std::round(v * inv_scale);
  if (q > 127.0f || q < -127.0f) {
    ++saturations;
    q = std::clamp(q, -127.0f, 127.0f);
  }
  return q;
}
}  // namespace

Matrix int8_linear(const Matrix& x, const Matrix& w, std::span<const float> s,
                   Int8GemmStats* stats, float static_act_scale) {
  if (x.cols() != w.rows()) {
    throw std::invalid_argument("int8_linear: inner dimensions differ");
  }
  if (!s.empty() && static_cast<std::int64_t>(s.size()) != w.rows()) {
    throw std::invalid_argument("int8_linear: s length mismatch");
  }
  const std::int64_t t_count = x.rows(), k = x.cols(), n = w.cols();
  // Quantize weights per output channel: wq[k][j] in [-127, 127],
  // scale_j = max_k |w[k][j] * s[k]| / 127.
  Matrix wq(k, n);
  std::vector<float> w_scale(static_cast<std::size_t>(n), 0.0f);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float sk = s.empty() ? 1.0f : s[static_cast<std::size_t>(kk)];
    for (std::int64_t j = 0; j < n; ++j) {
      w_scale[static_cast<std::size_t>(j)] =
          std::max(w_scale[static_cast<std::size_t>(j)],
                   std::fabs(w.at(kk, j) * sk));
    }
  }
  std::int64_t w_sat = 0;  // cannot saturate by construction; kept for clarity
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float sk = s.empty() ? 1.0f : s[static_cast<std::size_t>(kk)];
    for (std::int64_t j = 0; j < n; ++j) {
      const float scale = w_scale[static_cast<std::size_t>(j)];
      wq.at(kk, j) = scale > 0.0f
                         ? quant8(w.at(kk, j) * sk, 127.0f / scale, w_sat)
                         : 0.0f;
    }
  }
  Matrix y(t_count, n);
  Int8GemmStats local;
  std::vector<float> xq(static_cast<std::size_t>(k));
  for (std::int64_t t = 0; t < t_count; ++t) {
    const auto xr = x.row(t);
    // Static per-tensor scale (calibrated offline), or per-token
    // dynamic abs-max.
    float x_scale;
    if (static_act_scale > 0.0f) {
      x_scale = static_act_scale;
    } else {
      float amax = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float sk = s.empty() ? 1.0f : s[static_cast<std::size_t>(kk)];
        amax = std::max(amax, std::fabs(xr[kk] / sk));
      }
      x_scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    }
    local.mean_act_scale += x_scale;
    const float inv = 1.0f / x_scale;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float sk = s.empty() ? 1.0f : s[static_cast<std::size_t>(kk)];
      xq[static_cast<std::size_t>(kk)] = quant8(xr[kk] / sk, inv, local.act_saturations);
    }
    auto yr = y.row(t);
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;  // int32 accumulator in real hardware
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += double(xq[static_cast<std::size_t>(kk)]) * wq.at(kk, j);
      }
      yr[j] = static_cast<float>(acc) * x_scale *
              (w_scale[static_cast<std::size_t>(j)] / 127.0f);
    }
  }
  if (t_count > 0) local.mean_act_scale /= static_cast<double>(t_count);
  if (stats != nullptr) *stats = local;
  return y;
}

std::vector<float> smoothquant_vector(std::span<const float> act_abs_max,
                                      std::span<const float> w_abs_max,
                                      float lambda) {
  if (act_abs_max.size() != w_abs_max.size()) {
    throw std::invalid_argument("smoothquant_vector: length mismatch");
  }
  std::vector<float> s(act_abs_max.size(), 1.0f);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (act_abs_max[i] > 0.0f && w_abs_max[i] > 0.0f) {
      const float v = std::pow(act_abs_max[i], lambda) /
                      std::pow(w_abs_max[i], 1.0f - lambda);
      if (std::isfinite(v) && v > 0.0f) s[i] = v;
    }
  }
  return s;
}

}  // namespace nora::quant
