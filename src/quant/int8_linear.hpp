// Digital INT8 quantized GEMM — the digital-core baseline family the
// paper positions NORA against (Sec. VI): W8A8 with per-token dynamic
// activation scales and per-output-channel weight scales, with an
// optional SmoothQuant-style rescale vector s [Xiao et al., ICML'23].
//
// On digital cores the same outlier channels that break analog tiles
// break the per-token INT8 activation quantization; SmoothQuant's
// x/s, w*s migration fixes it. NORA is the analog-tile counterpart of
// that transform, so this module lets benches put the two side by side.
#pragma once

#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace nora::quant {

struct Int8GemmStats {
  std::int64_t act_saturations = 0;  // activation values clipped to +-127
  double mean_act_scale = 0.0;       // mean per-token activation scale
};

/// y = dequant( quant8(x / s) * quant8(w * s) ), bias added in fp32.
/// x: [T x K], w: [K x N], s: SmoothQuant vector (empty = identity).
/// Weight quantization is per-output-channel symmetric. Activation
/// quantization is per-token dynamic abs-max when static_act_scale <= 0,
/// or *static per-tensor* with the given scale otherwise — the harder
/// deployment mode SmoothQuant actually targets (the scale comes from
/// offline calibration, values beyond it saturate).
Matrix int8_linear(const Matrix& x, const Matrix& w,
                   std::span<const float> s = {},
                   Int8GemmStats* stats = nullptr,
                   float static_act_scale = 0.0f);

/// The SmoothQuant vector from calibration data (same formula as NORA's
/// Sec. IV): s_k = max|x_k|^lambda / max|w_k|^(1-lambda).
std::vector<float> smoothquant_vector(std::span<const float> act_abs_max,
                                      std::span<const float> w_abs_max,
                                      float lambda = 0.5f);

}  // namespace nora::quant
