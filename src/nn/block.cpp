#include "nn/block.hpp"

#include "tensor/ops.hpp"

namespace nora::nn {

TransformerBlock::TransformerBlock(const std::string& name, NormKind norm_kind,
                                   MlpKind mlp_kind, std::int64_t d_model,
                                   std::int64_t n_heads, std::int64_t d_ff,
                                   std::int64_t max_seq,
                                   std::vector<float> norm_gain, util::Rng& rng,
                                   float init_std)
    : norm1_(name + ".norm1", norm_kind, d_model, norm_gain),
      attn_(name + ".attn", d_model, n_heads, max_seq, rng, init_std),
      norm2_(name + ".norm2", norm_kind, d_model, std::move(norm_gain)),
      mlp_(name + ".mlp", mlp_kind, d_model, d_ff, rng, init_std) {}

Matrix TransformerBlock::forward(const Matrix& x, bool training) {
  Matrix h = ops::add(x, attn_.forward(norm1_.forward(x, training), training));
  return ops::add(h, mlp_.forward(norm2_.forward(h, training), training));
}

Matrix TransformerBlock::forward_cached(const Matrix& x,
                                        KvCache::BlockCache& cache,
                                        std::int64_t pos0) {
  Matrix h = ops::add(x, attn_.forward_cached(norm1_.forward(x), cache, pos0));
  return ops::add(h, mlp_.forward(norm2_.forward(h)));
}

Matrix TransformerBlock::forward_serve(const Matrix& x,
                                       std::span<const AttnServeSeq> seqs,
                                       std::span<const cim::StreamKey> keys) {
  Matrix h =
      ops::add(x, attn_.forward_serve(norm1_.forward(x), seqs, keys));
  return ops::add(h, mlp_.forward_keyed(norm2_.forward(h), keys));
}

Matrix TransformerBlock::backward(const Matrix& dy) {
  // Through the MLP residual branch.
  Matrix dh = norm2_.backward(mlp_.backward(dy));
  ops::add_inplace(dh, dy);
  // Through the attention residual branch.
  Matrix dx = norm1_.backward(attn_.backward(dh));
  ops::add_inplace(dx, dh);
  return dx;
}

void TransformerBlock::collect_params(ParamRefs& out) {
  norm1_.collect_params(out);
  attn_.collect_params(out);
  norm2_.collect_params(out);
  mlp_.collect_params(out);
}

void TransformerBlock::collect_linears(std::vector<Linear*>& out) {
  attn_.collect_linears(out);
  mlp_.collect_linears(out);
}

}  // namespace nora::nn
