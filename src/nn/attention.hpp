// Causal multi-head self-attention.
//
// Per the paper's deployment split (Fig. 2b), the QKV and output
// projections are nn::Linear (analog-mappable), while the softmax
// attention itself always runs digitally at full precision.
#pragma once

#include <string>
#include <vector>

#include "nn/kv_cache.hpp"
#include "nn/linear.hpp"
#include "nn/param.hpp"
#include "tensor/matrix.hpp"

namespace nora::nn {

/// One sequence's slice of a batched serving forward: `rows` new rows
/// of the input matrix belong to the sequence whose per-layer cache is
/// `cache`, starting at GLOBAL position pos0. Segments are concatenated
/// in input-row order.
///
/// Cross-request prefix sharing splits the sequence's K/V history into
/// two ranges: global positions [0, base_rows) live in the immutable
/// shared `base` (a retired request's published rows — never written),
/// and positions [base_rows, pos0) in the request's own `cache` at
/// local row j - base_rows. All appends go to the private cache, so
/// divergence from the shared prefix is copy-on-write by construction.
/// base == nullptr / base_rows == 0 is the ordinary unshared case, with
/// pos0 == cache->k.rows().
struct AttnServeSeq {
  KvCache::BlockCache* cache = nullptr;
  const KvCache::BlockCache* base = nullptr;
  std::int64_t base_rows = 0;
  std::int64_t pos0 = 0;
  std::int64_t rows = 0;
};

class CausalSelfAttention {
 public:
  /// max_seq bounds the learned relative-position bias table: scores get
  /// a per-head additive bias b_h[i-j], which lets offset-based heads
  /// (e.g. the "previous token" head of induction circuits) form from a
  /// single parameter instead of per-position-pair statistics.
  CausalSelfAttention(const std::string& name, std::int64_t d_model,
                      std::int64_t n_heads, std::int64_t max_seq,
                      util::Rng& rng, float init_std);

  const std::string& name() const { return name_; }
  std::int64_t d_model() const { return d_model_; }
  std::int64_t n_heads() const { return n_heads_; }

  /// x: [T x d_model] (one sequence) -> [T x d_model]. Throws
  /// std::invalid_argument (naming the layer and both lengths) when T
  /// exceeds max_seq — the relative-position bias table has no entry
  /// for larger offsets, and reading past it is undefined behavior.
  Matrix forward(const Matrix& x, bool training = false);
  Matrix backward(const Matrix& dy);

  /// Incremental forward: process new rows x (positions pos0..pos0+T-1),
  /// attending over `cache` plus the new rows, and append the new
  /// keys/values to the cache. Bit-identical to forward() over the
  /// concatenated sequence. Inference only. Throws std::invalid_argument
  /// when pos0 + T exceeds max_seq (see forward()).
  Matrix forward_cached(const Matrix& x, KvCache::BlockCache& cache,
                        std::int64_t pos0);

  /// Batched serving forward: x is the row-wise concatenation of
  /// several sequences' new rows (continuous batching: any mix of
  /// multi-row prefills and single-row decode steps). The QKV and
  /// output projections run once over the whole batch (one pass through
  /// the analog tiles, keyed per row by `keys`); the softmax attention
  /// runs per (sequence, head) against that sequence's own cache, with
  /// the exact inner loop of forward_cached. Each sequence's output is
  /// therefore bit-identical however the batch is composed.
  Matrix forward_serve(const Matrix& x, std::span<const AttnServeSeq> seqs,
                       std::span<const cim::StreamKey> keys);

  Linear& qkv() { return qkv_; }
  Linear& out_proj() { return out_proj_; }

  /// Pipeline placement stamp for the timing co-sim (see
  /// Linear::set_timing_chip): covers the digital score/context op; the
  /// qkv/out projections carry their own stamps.
  void set_timing_chip(int chip) { timing_chip_ = chip; }
  int timing_chip() const { return timing_chip_; }
  void collect_params(ParamRefs& out);
  void collect_linears(std::vector<Linear*>& out);

 private:
  std::string name_;
  int timing_chip_ = 0;
  std::int64_t d_model_ = 0;
  std::int64_t n_heads_ = 0;
  std::int64_t d_head_ = 0;
  std::int64_t max_seq_ = 0;
  Linear qkv_;       // [d, 3d]
  Linear out_proj_;  // [d, d]
  Param rel_bias_;   // [heads x max_seq]: score(i,j) += rel_bias[h][i-j]
  // Backward caches (one sequence at a time).
  Matrix qkv_cache_;                 // [T x 3d]
  std::vector<Matrix> probs_cache_;  // per head: [T x T] softmax rows
  // forward_serve step scratch (segment row offsets), reused across
  // steps; read by pool workers, so it lives here rather than
  // thread-local storage.
  std::vector<std::int64_t> serve_r0_;
};

}  // namespace nora::nn
