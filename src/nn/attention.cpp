#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "timing/trace.hpp"
#include "util/thread_pool.hpp"

namespace nora::nn {

CausalSelfAttention::CausalSelfAttention(const std::string& name,
                                         std::int64_t d_model,
                                         std::int64_t n_heads,
                                         std::int64_t max_seq, util::Rng& rng,
                                         float init_std)
    : name_(name),
      d_model_(d_model),
      n_heads_(n_heads),
      d_head_(d_model / n_heads),
      max_seq_(max_seq),
      qkv_(name + ".qkv", d_model, 3 * d_model, rng, init_std),
      out_proj_(name + ".out", d_model, d_model, rng, init_std),
      rel_bias_(name + ".rel_bias", Matrix(n_heads, max_seq)) {
  if (d_model % n_heads != 0) {
    throw std::invalid_argument("attention: d_model must be divisible by heads");
  }
}

Matrix CausalSelfAttention::forward(const Matrix& x, bool training) {
  const std::int64_t t_len = x.rows();
  // The rel_bias table only covers offsets [0, max_seq); a longer
  // sequence would read past its row (silent garbage scores at best).
  if (t_len > max_seq_) {
    throw std::invalid_argument(
        "attention[" + name_ + "]: sequence length " + std::to_string(t_len) +
        " exceeds max_seq " + std::to_string(max_seq_));
  }
  Matrix qkv = qkv_.forward(x, training);  // [T x 3d]
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Matrix concat(t_len, d_model_);
  if (training) probs_cache_.assign(static_cast<std::size_t>(n_heads_), Matrix());
  // Heads are independent and write disjoint column slices of `concat`,
  // so they fan out over the pool as-is; the math per head is untouched,
  // making the result bit-identical to the sequential loop.
  util::ThreadPool::global().parallel_for(n_heads_, [&](std::int64_t h) {
    const std::int64_t q_off = h * d_head_;
    const std::int64_t k_off = d_model_ + h * d_head_;
    const std::int64_t v_off = 2 * d_model_ + h * d_head_;
    // Causal softmax(Q K^T / sqrt(dh) + b[i-j]) V, row-wise softmax.
    const auto bias = rel_bias_.value.row(h);
    Matrix probs(t_len, t_len);
    for (std::int64_t i = 0; i < t_len; ++i) {
      const auto qi = qkv.row(i);
      auto pi = probs.row(i);
      float row_max = -1e30f;
      for (std::int64_t j = 0; j <= i; ++j) {
        const auto kj = qkv.row(j);
        float s = 0.0f;
        for (std::int64_t c = 0; c < d_head_; ++c) s += qi[q_off + c] * kj[k_off + c];
        s = s * scale + bias[i - j];
        pi[j] = s;
        row_max = std::max(row_max, s);
      }
      float denom = 0.0f;
      for (std::int64_t j = 0; j <= i; ++j) {
        pi[j] = std::exp(pi[j] - row_max);
        denom += pi[j];
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j <= i; ++j) pi[j] *= inv;
      auto oi = concat.row(i);
      for (std::int64_t j = 0; j <= i; ++j) {
        const float p = pi[j];
        const auto vj = qkv.row(j);
        for (std::int64_t c = 0; c < d_head_; ++c) oi[q_off + c] += p * vj[v_off + c];
      }
    }
    if (training) probs_cache_[static_cast<std::size_t>(h)] = std::move(probs);
  });
  if (training) qkv_cache_ = qkv;
  return out_proj_.forward(concat, training);
}

Matrix CausalSelfAttention::forward_cached(const Matrix& x,
                                           KvCache::BlockCache& cache,
                                           std::int64_t pos0) {
  const std::int64_t t_new = x.rows();
  // Largest offset read below is pos0 + t_new - 1; past max_seq the
  // rel_bias row has no entry for it.
  if (pos0 + t_new > max_seq_) {
    throw std::invalid_argument(
        "attention[" + name_ + "]: cached sequence length " +
        std::to_string(pos0 + t_new) + " exceeds max_seq " +
        std::to_string(max_seq_));
  }
  const Matrix qkv = qkv_.forward(x, /*training=*/false);
  if (cache.k.rows() != pos0 || (pos0 > 0 && cache.k.cols() != d_model_)) {
    throw std::invalid_argument("attention forward_cached: cache out of sync");
  }
  // Append the new keys/values in place: rows [0, pos0) already ARE the
  // cache, so the former copy-into-fresh-matrix round trip (one
  // allocation plus an O(pos0) copy per layer per decode step) is gone.
  // A cache pre-sized to its capacity (serve slabs) never reallocates.
  if (cache.k.cols() != d_model_) {
    cache.k = Matrix(0, d_model_);
    cache.v = Matrix(0, d_model_);
  }
  cache.k.resize_rows(pos0 + t_new);
  cache.v.resize_rows(pos0 + t_new);
  Matrix& k_all = cache.k;
  Matrix& v_all = cache.v;
  for (std::int64_t t = 0; t < t_new; ++t) {
    const auto row = qkv.row(t);
    auto kr = k_all.row(pos0 + t);
    auto vr = v_all.row(pos0 + t);
    for (std::int64_t c = 0; c < d_model_; ++c) {
      kr[c] = row[d_model_ + c];
      vr[c] = row[2 * d_model_ + c];
    }
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Matrix concat(t_new, d_model_);
  // Same disjoint-slice head fan-out as forward(); the probs scratch is
  // thread-local so concurrent heads never share mutable state and
  // long-lived pool workers reuse it allocation-free across steps.
  util::ThreadPool::global().parallel_for(n_heads_, [&](std::int64_t h) {
    const std::int64_t off = h * d_head_;
    thread_local std::vector<float> probs;
    const auto bias = rel_bias_.value.row(h);
    for (std::int64_t i = 0; i < t_new; ++i) {
      const std::int64_t gi = pos0 + i;  // global position
      const auto qi = qkv.row(i);
      probs.assign(static_cast<std::size_t>(gi) + 1, 0.0f);
      float row_max = -1e30f;
      for (std::int64_t j = 0; j <= gi; ++j) {
        const auto kj = k_all.row(j);
        float s = 0.0f;
        for (std::int64_t c = 0; c < d_head_; ++c) s += qi[off + c] * kj[off + c];
        s = s * scale + bias[gi - j];
        probs[static_cast<std::size_t>(j)] = s;
        row_max = std::max(row_max, s);
      }
      float denom = 0.0f;
      for (auto& p : probs) {
        p = std::exp(p - row_max);
        denom += p;
      }
      const float inv = 1.0f / denom;
      auto oi = concat.row(i);
      for (std::int64_t j = 0; j <= gi; ++j) {
        const float p = probs[static_cast<std::size_t>(j)] * inv;
        const auto vj = v_all.row(j);
        for (std::int64_t c = 0; c < d_head_; ++c) oi[off + c] += p * vj[off + c];
      }
    }
  });
  return out_proj_.forward(concat, /*training=*/false);
}

Matrix CausalSelfAttention::forward_serve(const Matrix& x,
                                          std::span<const AttnServeSeq> seqs,
                                          std::span<const cim::StreamKey> keys) {
  const std::int64_t n_seqs = static_cast<std::int64_t>(seqs.size());
  // Step scratch, shared by the worker lambdas below — a member (not
  // thread_local) because pool workers must see the main thread's fill.
  // assign() keeps capacity, so steady-state steps don't allocate.
  std::vector<std::int64_t>& r0 = serve_r0_;
  r0.assign(static_cast<std::size_t>(n_seqs), 0);
  std::int64_t total = 0;
  for (std::int64_t s = 0; s < n_seqs; ++s) {
    const AttnServeSeq& seq = seqs[static_cast<std::size_t>(s)];
    if (seq.cache == nullptr || seq.rows <= 0) {
      throw std::invalid_argument("attention forward_serve: bad segment");
    }
    if (seq.base_rows < 0 || seq.base_rows > seq.pos0 ||
        (seq.base_rows > 0) != (seq.base != nullptr) ||
        (seq.base != nullptr && (seq.base->k.rows() < seq.base_rows ||
                                 seq.base->k.cols() != d_model_))) {
      throw std::invalid_argument("attention forward_serve: bad prefix base");
    }
    if (seq.pos0 + seq.rows > max_seq_) {
      throw std::invalid_argument(
          "attention[" + name_ + "]: cached sequence length " +
          std::to_string(seq.pos0 + seq.rows) + " exceeds max_seq " +
          std::to_string(max_seq_));
    }
    if (seq.base_rows + seq.cache->k.rows() != seq.pos0 ||
        (seq.pos0 - seq.base_rows > 0 && seq.cache->k.cols() != d_model_)) {
      throw std::invalid_argument("attention forward_serve: cache out of sync");
    }
    r0[static_cast<std::size_t>(s)] = total;
    total += seq.rows;
  }
  if (total != x.rows()) {
    throw std::invalid_argument(
        "attention forward_serve: segment rows do not cover the batch");
  }
  const Matrix qkv = qkv_.forward_keyed(x, keys);  // [T x 3d], one tile pass
  if (timing::active_trace() != nullptr) {
    // Exact ragged MAC count of the digital score/context arithmetic:
    // each new row at global position p attends over p + 1 keys, and
    // QK^T plus P·V each cost ctx * d_model MACs per row.
    std::int64_t macs = 0;
    for (const AttnServeSeq& seq : seqs) {
      macs += 2 * d_model_ *
              (seq.rows * seq.pos0 + seq.rows * (seq.rows + 1) / 2);
    }
    timing::TimingOp op;
    op.kind = timing::OpKind::kAttention;
    op.layer = name_ + ".scores";
    op.rows = total;
    op.k = d_model_;
    op.n = d_model_;
    op.macs = macs;
    op.chip = timing_chip_;
    timing::record(std::move(op));
  }
  // Append this step's K/V rows directly into each sequence's cache:
  // sequences are independent work items with disjoint state, and the
  // in-place append removes the former per-sequence allocate + O(pos0)
  // copy (a pool-pre-sized slab never reallocates here).
  util::ThreadPool::global().parallel_for(n_seqs, [&](std::int64_t s) {
    const AttnServeSeq& seq = seqs[static_cast<std::size_t>(s)];
    KvCache::BlockCache& c = *seq.cache;
    if (c.k.cols() != d_model_) {
      c.k = Matrix(0, d_model_);
      c.v = Matrix(0, d_model_);
    }
    // Appends land in the PRIVATE cache at local row (global - base):
    // the shared base is never written, so a request diverging from its
    // leased prefix copies nothing and clobbers nobody.
    const std::int64_t local0 = seq.pos0 - seq.base_rows;
    c.k.resize_rows(local0 + seq.rows);
    c.v.resize_rows(local0 + seq.rows);
    for (std::int64_t t = 0; t < seq.rows; ++t) {
      const auto row = qkv.row(r0[static_cast<std::size_t>(s)] + t);
      auto kr = c.k.row(local0 + t);
      auto vr = c.v.row(local0 + t);
      for (std::int64_t cc = 0; cc < d_model_; ++cc) {
        kr[cc] = row[d_model_ + cc];
        vr[cc] = row[2 * d_model_ + cc];
      }
    }
  });
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Matrix concat(total, d_model_);
  // (sequence x head) fan-out: each item writes the head's column slice
  // of its sequence's row range — disjoint — with the same digital math
  // and accumulation order as forward_cached, so any thread count and
  // any batch composition produce identical rows.
  util::ThreadPool::global().parallel_for(
      n_seqs * n_heads_, [&](std::int64_t item) {
        const std::int64_t s = item / n_heads_;
        const std::int64_t h = item % n_heads_;
        const AttnServeSeq& seq = seqs[static_cast<std::size_t>(s)];
        const Matrix& ks = seq.cache->k;
        const Matrix& vs = seq.cache->v;
        // Two-range history: global rows [0, br) come from the shared
        // base, the rest from the private cache at j - br. The j order,
        // math and accumulation are exactly the unshared loop's, so a
        // prefix hit is bit-identical to the cold run that would have
        // recomputed those rows (they ARE the cold run's rows).
        const std::int64_t br = seq.base_rows;
        const Matrix& bk = seq.base != nullptr ? seq.base->k : ks;
        const Matrix& bv = seq.base != nullptr ? seq.base->v : vs;
        const std::int64_t off = h * d_head_;
        thread_local std::vector<float> probs;
        const auto bias = rel_bias_.value.row(h);
        for (std::int64_t i = 0; i < seq.rows; ++i) {
          const std::int64_t gi = seq.pos0 + i;  // global position
          const auto qi = qkv.row(r0[static_cast<std::size_t>(s)] + i);
          probs.assign(static_cast<std::size_t>(gi) + 1, 0.0f);
          float row_max = -1e30f;
          for (std::int64_t j = 0; j <= gi; ++j) {
            const auto kj = j < br ? bk.row(j) : ks.row(j - br);
            float sc = 0.0f;
            for (std::int64_t c = 0; c < d_head_; ++c) {
              sc += qi[off + c] * kj[off + c];
            }
            sc = sc * scale + bias[gi - j];
            probs[static_cast<std::size_t>(j)] = sc;
            row_max = std::max(row_max, sc);
          }
          float denom = 0.0f;
          for (auto& p : probs) {
            p = std::exp(p - row_max);
            denom += p;
          }
          const float inv = 1.0f / denom;
          auto oi = concat.row(r0[static_cast<std::size_t>(s)] + i);
          for (std::int64_t j = 0; j <= gi; ++j) {
            const float p = probs[static_cast<std::size_t>(j)] * inv;
            const auto vj = j < br ? bv.row(j) : vs.row(j - br);
            for (std::int64_t c = 0; c < d_head_; ++c) {
              oi[off + c] += p * vj[off + c];
            }
          }
        }
      });
  return out_proj_.forward_keyed(concat, keys);
}

Matrix CausalSelfAttention::backward(const Matrix& dy) {
  const std::int64_t t_len = dy.rows();
  if (qkv_cache_.rows() != t_len) {
    throw std::logic_error("attention backward: no matching forward cache");
  }
  Matrix dconcat = out_proj_.backward(dy);  // [T x d]
  Matrix dqkv(t_len, 3 * d_model_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  for (std::int64_t h = 0; h < n_heads_; ++h) {
    const std::int64_t q_off = h * d_head_;
    const std::int64_t k_off = d_model_ + h * d_head_;
    const std::int64_t v_off = 2 * d_model_ + h * d_head_;
    const Matrix& probs = probs_cache_[static_cast<std::size_t>(h)];
    for (std::int64_t i = 0; i < t_len; ++i) {
      const auto doi = dconcat.row(i);
      const auto pi = probs.row(i);
      // dP_ij = dO_i . V_j ; dV_j += P_ij dO_i
      std::vector<float> dp(static_cast<std::size_t>(i) + 1, 0.0f);
      for (std::int64_t j = 0; j <= i; ++j) {
        const auto vj = qkv_cache_.row(j);
        auto dvj = dqkv.row(j);
        float acc = 0.0f;
        const float p = pi[j];
        for (std::int64_t c = 0; c < d_head_; ++c) {
          acc += doi[q_off + c] * vj[v_off + c];
          dvj[v_off + c] += p * doi[q_off + c];
        }
        dp[static_cast<std::size_t>(j)] = acc;
      }
      // Softmax backward: dS_ij = P_ij (dP_ij - sum_k P_ik dP_ik).
      float dot = 0.0f;
      for (std::int64_t j = 0; j <= i; ++j) dot += pi[j] * dp[static_cast<std::size_t>(j)];
      const auto qi = qkv_cache_.row(i);
      auto dqi = dqkv.row(i);
      auto dbias = rel_bias_.grad.row(h);
      for (std::int64_t j = 0; j <= i; ++j) {
        const float dscore = pi[j] * (dp[static_cast<std::size_t>(j)] - dot);
        dbias[i - j] += dscore;
        const float ds = dscore * scale;
        const auto kj = qkv_cache_.row(j);
        auto dkj = dqkv.row(j);
        for (std::int64_t c = 0; c < d_head_; ++c) {
          dqi[q_off + c] += ds * kj[k_off + c];
          dkj[k_off + c] += ds * qi[q_off + c];
        }
      }
    }
  }
  return qkv_.backward(dqkv);
}

void CausalSelfAttention::collect_params(ParamRefs& out) {
  qkv_.collect_params(out);
  out_proj_.collect_params(out);
  out.push_back(&rel_bias_);
}

void CausalSelfAttention::collect_linears(std::vector<Linear*>& out) {
  out.push_back(&qkv_);
  out.push_back(&out_proj_);
}

}  // namespace nora::nn
