#include "nn/mlp.hpp"

#include <stdexcept>

#include "nn/activations.hpp"

namespace nora::nn {

Mlp::Mlp(const std::string& name, MlpKind kind, std::int64_t d_model,
         std::int64_t d_ff, util::Rng& rng, float init_std)
    : kind_(kind),
      up_(name + ".up", d_model, d_ff, rng, init_std),
      down_(name + ".down", d_ff, d_model, rng, init_std) {
  if (kind_ == MlpKind::kSiluGated) {
    gate_.emplace(name + ".gate", d_model, d_ff, rng, init_std);
  }
}

Matrix Mlp::forward(const Matrix& x, bool training) {
  Matrix u = up_.forward(x, training);
  Matrix h(u.rows(), u.cols());
  if (kind_ == MlpKind::kGelu) {
    if (training) up_cache_ = u;
    for (std::int64_t i = 0; i < u.size(); ++i) h.data()[i] = gelu(u.data()[i]);
  } else {
    Matrix g = gate_->forward(x, training);
    if (training) {
      up_cache_ = u;
      gate_cache_ = g;
    }
    for (std::int64_t i = 0; i < u.size(); ++i) {
      h.data()[i] = silu(g.data()[i]) * u.data()[i];
    }
  }
  return down_.forward(h, training);
}

Matrix Mlp::forward_keyed(const Matrix& x,
                          std::span<const cim::StreamKey> keys) {
  Matrix u = up_.forward_keyed(x, keys);
  Matrix h(u.rows(), u.cols());
  if (kind_ == MlpKind::kGelu) {
    for (std::int64_t i = 0; i < u.size(); ++i) h.data()[i] = gelu(u.data()[i]);
  } else {
    Matrix g = gate_->forward_keyed(x, keys);
    for (std::int64_t i = 0; i < u.size(); ++i) {
      h.data()[i] = silu(g.data()[i]) * u.data()[i];
    }
  }
  return down_.forward_keyed(h, keys);
}

Matrix Mlp::backward(const Matrix& dy) {
  Matrix dh = down_.backward(dy);
  if (kind_ == MlpKind::kGelu) {
    if (!up_cache_.same_shape(dh)) throw std::logic_error("Mlp backward: no cache");
    for (std::int64_t i = 0; i < dh.size(); ++i) {
      dh.data()[i] *= gelu_grad(up_cache_.data()[i]);
    }
    return up_.backward(dh);
  }
  if (!up_cache_.same_shape(dh)) throw std::logic_error("Mlp backward: no cache");
  Matrix dg(dh.rows(), dh.cols());
  Matrix du(dh.rows(), dh.cols());
  for (std::int64_t i = 0; i < dh.size(); ++i) {
    const float g = gate_cache_.data()[i];
    const float u = up_cache_.data()[i];
    du.data()[i] = dh.data()[i] * silu(g);
    dg.data()[i] = dh.data()[i] * u * silu_grad(g);
  }
  Matrix dx = up_.backward(du);
  Matrix dx_gate = gate_->backward(dg);
  for (std::int64_t i = 0; i < dx.size(); ++i) dx.data()[i] += dx_gate.data()[i];
  return dx;
}

void Mlp::collect_params(ParamRefs& out) {
  up_.collect_params(out);
  if (gate_) gate_->collect_params(out);
  down_.collect_params(out);
}

void Mlp::collect_linears(std::vector<Linear*>& out) {
  out.push_back(&up_);
  if (gate_) out.push_back(&*gate_);
  out.push_back(&down_);
}

}  // namespace nora::nn
