// A trainable parameter: value + gradient accumulator.
//
// Modules own their Params and expose them through collect_params() so
// the optimizer and the checkpoint writer can walk the whole model
// without knowing its structure.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace nora::nn {

struct Param {
  std::string name;
  Matrix value;
  Matrix grad;
  bool trainable = true;

  Param() = default;
  Param(std::string n, Matrix v, bool train = true)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()), trainable(train) {}

  void zero_grad() { grad.fill(0.0f); }
};

using ParamRefs = std::vector<Param*>;

}  // namespace nora::nn
