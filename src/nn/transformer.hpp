// Decoder-only transformer language model — the inference (and training)
// stack the paper runs on top of PyTorch/HuggingFace, rebuilt in C++.
//
// All nn::Linear layers (QKV / attention-out / MLP projections / LM head)
// can be re-targeted to analog CIM tiles; embeddings, normalization,
// softmax attention and activation functions always run digitally,
// matching the deployment split of paper Fig. 2b.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/block.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/param.hpp"
#include "tensor/matrix.hpp"

namespace nora::nn {

struct TransformerConfig {
  std::int64_t vocab_size = 96;
  std::int64_t d_model = 64;
  std::int64_t n_layers = 2;
  std::int64_t n_heads = 4;
  std::int64_t d_ff = 256;
  std::int64_t max_seq = 64;
  NormKind norm_kind = NormKind::kLayerNorm;
  MlpKind mlp_kind = MlpKind::kGelu;
  /// Fixed per-channel norm gain (outlier planting); empty = all ones.
  std::vector<float> norm_gain;
  float init_std = 0.05f;
  /// Initialize the LM head as the transpose of the token embedding
  /// (OPT-style weight tying at init). The two stay independent
  /// parameters afterwards, but starting with an exact copy map makes
  /// retrieval/copy circuits form much faster.
  bool tie_head_init = true;
  std::uint64_t seed = 1234;

  std::int64_t param_count() const;
};

class TransformerLM {
 public:
  explicit TransformerLM(TransformerConfig cfg);

  const TransformerConfig& config() const { return cfg_; }

  /// tokens: one sequence of ids in [0, vocab). Returns logits [T x V].
  Matrix forward(std::span<const int> tokens, bool training = false);

  /// dlogits: [T x V]; accumulates all parameter gradients.
  void backward(const Matrix& dlogits);

  /// Greedy argmax of the last position's logits.
  int predict_next(std::span<const int> tokens);

  /// KV-cached incremental forward: append `tokens` at positions
  /// cache.length.., return their logits, and extend the cache.
  /// Numerically identical to forward() over the full sequence. Throws
  /// nn::KvCacheOverflow when the append would exceed the model's
  /// max_seq or the cache's own capacity.
  Matrix forward_cached(std::span<const int> tokens, KvCache& cache);

  /// One request's slice of a batched serving step.
  struct ServeSegment {
    std::span<const int> tokens;    // new tokens (prefill chunk or 1 decode)
    KvCache* cache = nullptr;       // the request's PRIVATE cache
    std::uint64_t stream = 0;       // request noise-stream key
    /// Shared immutable prefix (a KvCachePool publication): the first
    /// base_len global positions are read from `base` and never
    /// recomputed or written; the private cache holds positions
    /// base_len.. at local row (global - base_len). Requires the same
    /// stream the base's rows were computed under, or the per-row noise
    /// keys — and therefore the logits — would differ from a cold run.
    const KvCache* base = nullptr;
    std::int64_t base_len = 0;
  };

  /// Continuous-batching serving forward: run every segment's new
  /// tokens through the stack in ONE pass per linear layer (the analog
  /// tile passes are shared by the whole batch), attending each segment
  /// against its own KV cache. Row noise is keyed on (segment stream,
  /// request-local position) — see cim::StreamKey — so each segment's
  /// logits are bit-identical whether it is served alone or batched
  /// with any other segments, at any thread count. Returns the
  /// segments' logits rows concatenated in segment order and extends
  /// every cache. Throws nn::KvCacheOverflow on capacity/max_seq
  /// violations before touching any state.
  Matrix forward_serve(std::span<const ServeSegment> segments);

  /// Greedy decoding: consume the prompt once, then emit up to
  /// max_new_tokens (bounded by max_seq) using the KV cache.
  std::vector<int> generate(std::span<const int> prompt, int max_new_tokens);

  /// All trainable + fixed parameters, in a stable order (used by the
  /// optimizer and checkpoint I/O).
  ParamRefs collect_params();
  void zero_grads();

  /// Every analog-mappable linear layer, in a stable order.
  std::vector<Linear*> linear_layers();
  std::vector<TransformerBlock>& blocks() { return blocks_; }
  Linear& lm_head() { return lm_head_; }

  /// True if any linear layer currently runs on an analog backend.
  bool is_analog() const;
  /// Revert every linear layer to the digital backend.
  void to_digital();
  /// Route every linear layer through its exact fp32 GEMM without
  /// discarding the analog/INT8 deployment (see Linear::
  /// set_digital_bypass). The serving layer flips this around
  /// maintenance windows while the tiles are being repaired.
  void set_digital_bypass(bool on);

 private:
  TransformerConfig cfg_;
  Param tok_emb_;  // [V x d]
  Param pos_emb_;  // [max_seq x d]
  std::vector<TransformerBlock> blocks_;
  Norm final_norm_;
  Linear lm_head_;  // [d x V]
  std::vector<int> tokens_cache_;

  /// Pre-size a fresh cache's per-layer K/V matrices to its slab
  /// capacity so every later in-place append stays allocation-free.
  void init_cache_blocks(KvCache& cache) const;

  // forward_serve step scratch, reused across decode steps (assign
  // keeps capacity).
  std::vector<cim::StreamKey> serve_keys_;
  std::vector<AttnServeSeq> serve_seqs_;
};

}  // namespace nora::nn
