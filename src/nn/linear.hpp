// Linear layer with a pluggable compute backend.
//
// This is the seam the whole paper turns on (its Fig. 2b): during
// training and for the "digital full precision" baseline the layer is a
// plain fp32 GEMM; for analog deployment it is re-targeted to a
// cim::AnalogMatmul tile array (optionally with a NORA rescale vector),
// while normalization / attention / activations stay digital.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cim/analog_matmul.hpp"
#include "cim/tile_config.hpp"
#include "nn/param.hpp"
#include "tensor/matrix.hpp"

namespace nora::nn {

class Linear {
 public:
  /// Weights [in x out], bias [out]. Initialized N(0, init_std).
  Linear(std::string name, std::int64_t in_dim, std::int64_t out_dim,
         util::Rng& rng, float init_std);

  const std::string& name() const { return name_; }
  std::int64_t in_dim() const { return w_.value.rows(); }
  std::int64_t out_dim() const { return w_.value.cols(); }
  bool is_analog() const { return analog_ != nullptr; }

  /// x: [T x in] -> [T x out]. training=true caches x for backward
  /// (digital backend only).
  Matrix forward(const Matrix& x, bool training = false);

  /// Inference forward with explicit per-row noise-stream keys (see
  /// cim::StreamKey): the serving layer keys each row on its request's
  /// stream and request-local position so results do not depend on
  /// batch composition. Digital and INT8 backends are row-wise
  /// deterministic and ignore the keys. Never captures or caches.
  Matrix forward_keyed(const Matrix& x, std::span<const cim::StreamKey> keys);

  /// Backprop; accumulates dW/db, returns dX. Digital backend only.
  Matrix backward(const Matrix& dy);

  /// Re-target to an analog tile array. `s` is the NORA rescale vector
  /// (length in_dim) or empty for the naive mapping.
  void to_analog(const cim::TileConfig& cfg, std::vector<float> s,
                 std::uint64_t seed);
  /// Re-target to the digital W8A8 INT8 backend; `s` is a SmoothQuant
  /// rescale vector or empty. static_act_scale > 0 selects static
  /// per-tensor activation quantization with that calibrated scale;
  /// otherwise scales are per-token dynamic.
  void to_int8(std::vector<float> s, float static_act_scale = 0.0f);
  bool is_int8() const { return int8_; }
  /// Back to the exact digital fp32 GEMM.
  void to_digital();
  cim::AnalogMatmul* analog() { return analog_.get(); }
  const cim::AnalogMatmul* analog() const { return analog_.get(); }

  /// Pipeline placement stamp for the timing co-sim: the chip this
  /// layer's ops execute on (TimingOp::chip). Pure metadata — it never
  /// changes what the layer computes. Set by shard::apply_plan.
  void set_timing_chip(int chip) { timing_chip_ = chip; }
  int timing_chip() const { return timing_chip_; }

  /// Non-destructive digital detour: while set, forwards run the exact
  /// fp32 GEMM but the analog (or INT8) backend stays programmed and
  /// resumes untouched when the bypass clears. This is the serving
  /// layer's maintenance-window path — the tiles are "off line" being
  /// repaired, yet the deployment (conductances, wear record, NORA
  /// rescale) must survive, unlike to_digital() which discards it.
  void set_digital_bypass(bool on) { digital_bypass_ = on; }
  bool digital_bypass() const { return digital_bypass_; }

  // --- calibration hooks (used by the NORA calibration pass) ---
  /// While enabled, digital forwards accumulate per-input-channel
  /// max|x_k| into input_abs_max().
  void set_capture_input(bool on);
  std::span<const float> input_abs_max() const { return input_abs_max_; }
  /// While enabled, digital forwards also append full input rows (for
  /// distribution analytics: Fig. 4 KDE, Fig. 6 kurtosis).
  void set_capture_full(bool on);
  const Matrix& captured_inputs() const { return captured_inputs_; }
  /// Per-input-channel max|w_k| (max over the row of W).
  std::vector<float> weight_row_abs_max() const;

  Param& weight() { return w_; }
  const Param& weight() const { return w_; }
  Param& bias() { return b_; }
  void collect_params(ParamRefs& out);

 private:
  /// Append this pass's shape metadata to the thread-local timing trace
  /// (no-op when tracing is off — the timing.enabled=false fast path).
  void record_timing(std::int64_t rows) const;

  std::string name_;
  Param w_;  // [in x out]
  Param b_;  // [1 x out]
  std::unique_ptr<cim::AnalogMatmul> analog_;
  int timing_chip_ = 0;
  bool digital_bypass_ = false;
  bool int8_ = false;
  std::vector<float> int8_s_;
  float int8_static_scale_ = 0.0f;
  Matrix x_cache_;
  bool capture_input_ = false;
  bool capture_full_ = false;
  std::vector<float> input_abs_max_;
  Matrix captured_inputs_;
};

}  // namespace nora::nn
