// Scalar activation functions and their derivatives (used by the MLP
// blocks: GELU for the OPT-like family, SiLU for the gated
// LLaMA/Mistral-like family).
#pragma once

namespace nora::nn {

float gelu(float x);
float gelu_grad(float x);

float silu(float x);
float silu_grad(float x);

}  // namespace nora::nn
