// Feed-forward blocks: plain GELU MLP (OPT family) and SiLU-gated MLP
// (LLaMA / Mistral family). All projections are nn::Linear and thus
// analog-mappable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nn/linear.hpp"
#include "tensor/matrix.hpp"

namespace nora::nn {

enum class MlpKind { kGelu, kSiluGated };

class Mlp {
 public:
  Mlp(const std::string& name, MlpKind kind, std::int64_t d_model,
      std::int64_t d_ff, util::Rng& rng, float init_std);

  MlpKind kind() const { return kind_; }

  Matrix forward(const Matrix& x, bool training = false);
  /// Inference forward with per-row noise-stream keys (serving path);
  /// activations are elementwise, so only the projections care.
  Matrix forward_keyed(const Matrix& x, std::span<const cim::StreamKey> keys);
  Matrix backward(const Matrix& dy);

  Linear& up() { return up_; }
  Linear* gate() { return gate_ ? &*gate_ : nullptr; }
  Linear& down() { return down_; }

  void collect_params(ParamRefs& out);
  void collect_linears(std::vector<Linear*>& out);

 private:
  MlpKind kind_;
  Linear up_;                   // [d, ff] (GELU path or gated "up")
  std::optional<Linear> gate_;  // [d, ff] (gated family only)
  Linear down_;                 // [ff, d]
  Matrix up_cache_;             // pre-activation of up_
  Matrix gate_cache_;           // pre-activation of gate_
};

}  // namespace nora::nn
