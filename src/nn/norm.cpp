#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace nora::nn {

Norm::Norm(std::string name, NormKind kind, std::int64_t dim,
           std::vector<float> gain)
    : name_(std::move(name)), kind_(kind), dim_(dim) {
  if (gain.empty()) gain.assign(static_cast<std::size_t>(dim), 1.0f);
  if (static_cast<std::int64_t>(gain.size()) != dim) {
    throw std::invalid_argument("Norm: gain length mismatch");
  }
  Matrix g(1, dim, std::vector<float>(gain.begin(), gain.end()));
  gain_ = Param(name_ + ".gain", std::move(g), /*train=*/false);
  bias_ = Param(name_ + ".bias", Matrix(1, dim),
                /*train=*/kind_ == NormKind::kLayerNorm);
}

Matrix Norm::forward(const Matrix& x, bool training) {
  if (x.cols() != dim_) throw std::invalid_argument("Norm::forward: dim mismatch");
  const std::int64_t t_count = x.rows();
  Matrix y(t_count, dim_);
  if (training) {
    x_cache_ = x;
    inv_std_cache_.assign(static_cast<std::size_t>(t_count), 0.0f);
    mean_cache_.assign(static_cast<std::size_t>(t_count), 0.0f);
  }
  const auto g = gain_.value.row(0);
  const auto b = bias_.value.row(0);
  const float inv_d = 1.0f / static_cast<float>(dim_);
  for (std::int64_t t = 0; t < t_count; ++t) {
    const auto xr = x.row(t);
    auto yr = y.row(t);
    float mean = 0.0f;
    if (kind_ == NormKind::kLayerNorm) {
      for (float v : xr) mean += v;
      mean *= inv_d;
    }
    float var = 0.0f;
    for (float v : xr) {
      const float d = v - mean;
      var += d * d;
    }
    var *= inv_d;
    const float inv_std = 1.0f / std::sqrt(var + kEps);
    for (std::int64_t c = 0; c < dim_; ++c) {
      yr[c] = (xr[c] - mean) * inv_std * g[c];
      if (kind_ == NormKind::kLayerNorm) yr[c] += b[c];
    }
    if (training) {
      inv_std_cache_[static_cast<std::size_t>(t)] = inv_std;
      mean_cache_[static_cast<std::size_t>(t)] = mean;
    }
  }
  return y;
}

Matrix Norm::backward(const Matrix& dy) {
  if (x_cache_.rows() != dy.rows()) {
    throw std::logic_error("Norm::backward: no matching forward cache");
  }
  const std::int64_t t_count = dy.rows();
  Matrix dx(t_count, dim_);
  const auto g = gain_.value.row(0);
  auto dbias = bias_.grad.row(0);
  const float inv_d = 1.0f / static_cast<float>(dim_);
  for (std::int64_t t = 0; t < t_count; ++t) {
    const auto xr = x_cache_.row(t);
    const auto dyr = dy.row(t);
    auto dxr = dx.row(t);
    const float inv_std = inv_std_cache_[static_cast<std::size_t>(t)];
    const float mean = mean_cache_[static_cast<std::size_t>(t)];
    if (kind_ == NormKind::kLayerNorm) {
      // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))
      float sum_dxhat = 0.0f;
      float sum_dxhat_xhat = 0.0f;
      for (std::int64_t c = 0; c < dim_; ++c) {
        const float xhat = (xr[c] - mean) * inv_std;
        const float dxhat = dyr[c] * g[c];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
        dbias[c] += dyr[c];
      }
      sum_dxhat *= inv_d;
      sum_dxhat_xhat *= inv_d;
      for (std::int64_t c = 0; c < dim_; ++c) {
        const float xhat = (xr[c] - mean) * inv_std;
        const float dxhat = dyr[c] * g[c];
        dxr[c] = inv_std * (dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
      }
    } else {
      // RMSNorm: dx = inv_std * (dxhat - xhat * mean(dxhat * xhat))
      float sum_dxhat_xhat = 0.0f;
      for (std::int64_t c = 0; c < dim_; ++c) {
        const float xhat = xr[c] * inv_std;
        const float dxhat = dyr[c] * g[c];
        sum_dxhat_xhat += dxhat * xhat;
      }
      sum_dxhat_xhat *= inv_d;
      for (std::int64_t c = 0; c < dim_; ++c) {
        const float xhat = xr[c] * inv_std;
        const float dxhat = dyr[c] * g[c];
        dxr[c] = inv_std * (dxhat - xhat * sum_dxhat_xhat);
      }
    }
  }
  return dx;
}

void Norm::collect_params(ParamRefs& out) {
  out.push_back(&gain_);
  out.push_back(&bias_);
}

}  // namespace nora::nn
