// KV-cached incremental decoding.
//
// Autoregressive generation re-uses the attention keys/values of past
// positions instead of re-running the whole prefix — the standard LLM
// serving optimization. The cached path must be numerically identical
// to the full-context forward (unit-tested), on digital and analog
// backends alike; on analog tiles it also models the realistic serving
// pattern where each generated token makes one pass through the tiles.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace nora::nn {

/// Named growth-guard error: appending tokens would push a cache past
/// its own capacity or the model's max_seq. Thrown by the transformer
/// entry points *before* any layer state is touched, instead of letting
/// the attention rel_bias guard fire layers-deep into a half-updated
/// forward. Derives std::invalid_argument so existing callers that
/// catch the old guard keep working.
class KvCacheOverflow : public std::invalid_argument {
 public:
  KvCacheOverflow(std::int64_t length, std::int64_t append, std::int64_t limit,
                  const char* which)
      : std::invalid_argument("KvCacheOverflow: appending " +
                              std::to_string(append) + " token(s) at length " +
                              std::to_string(length) + " exceeds " + which +
                              " " + std::to_string(limit)) {}
};

struct KvCache {
  struct BlockCache {
    Matrix k;  // [t_past x d_model], concatenated per-head keys
    Matrix v;  // [t_past x d_model]
  };
  std::vector<BlockCache> blocks;
  std::int64_t length = 0;
  /// Hard token budget for this cache (0 = bounded only by the model's
  /// max_seq). Set by serve::KvCachePool to the slab size a request was
  /// admitted with; the transformer forward throws KvCacheOverflow
  /// rather than silently growing past it.
  std::int64_t capacity = 0;

  void clear() {
    blocks.clear();
    length = 0;
  }

  /// Drop every cached position >= new_length (no-op when already
  /// shorter). Used on request cancellation/retirement so a recycled
  /// slab starts empty, and usable for prefix-rollback decoding.
  void trim(std::int64_t new_length) {
    if (new_length < 0) {
      throw std::invalid_argument("KvCache::trim: negative length");
    }
    if (new_length >= length) return;
    // In place: the dropped rows' storage stays with the matrices, so a
    // recycled slab refills its previous high-water footprint without
    // allocating.
    for (BlockCache& b : blocks) {
      b.k.resize_rows(new_length);
      b.v.resize_rows(new_length);
    }
    length = new_length;
  }

  /// Bytes held by the cached keys/values (fp32).
  std::int64_t bytes() const {
    std::int64_t n = 0;
    for (const BlockCache& b : blocks) n += b.k.size() + b.v.size();
    return n * static_cast<std::int64_t>(sizeof(float));
  }
};

}  // namespace nora::nn
