// KV-cached incremental decoding.
//
// Autoregressive generation re-uses the attention keys/values of past
// positions instead of re-running the whole prefix — the standard LLM
// serving optimization. The cached path must be numerically identical
// to the full-context forward (unit-tested), on digital and analog
// backends alike; on analog tiles it also models the realistic serving
// pattern where each generated token makes one pass through the tiles.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace nora::nn {

struct KvCache {
  struct BlockCache {
    Matrix k;  // [t_past x d_model], concatenated per-head keys
    Matrix v;  // [t_past x d_model]
  };
  std::vector<BlockCache> blocks;
  std::int64_t length = 0;

  void clear() {
    blocks.clear();
    length = 0;
  }
};

}  // namespace nora::nn
