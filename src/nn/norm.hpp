// LayerNorm (OPT-like family) and RMSNorm (LLaMA/Mistral-like family).
//
// The elementwise gain vector is deliberately *non-trainable* and can be
// planted with per-channel outlier amplification. This is how the model
// zoo reproduces the defining distributional property of real LLMs
// (paper Fig. 4): a few channels of the residual stream are consistently
// amplified, so the activations entering every linear layer have a
// long-tail, high-kurtosis distribution while weights stay near-Gaussian.
#pragma once

#include <span>
#include <string>

#include "nn/param.hpp"

namespace nora::nn {

enum class NormKind { kLayerNorm, kRmsNorm };

class Norm {
 public:
  /// gain: fixed per-channel scale (the outlier-planting hook);
  /// pass an empty vector for all-ones. LayerNorm also has a trainable bias.
  Norm(std::string name, NormKind kind, std::int64_t dim,
       std::vector<float> gain = {});

  NormKind kind() const { return kind_; }
  std::int64_t dim() const { return dim_; }
  std::span<const float> gain() const { return gain_.value.row(0); }

  Matrix forward(const Matrix& x, bool training = false);
  Matrix backward(const Matrix& dy);

  void collect_params(ParamRefs& out);

 private:
  static constexpr float kEps = 1e-5f;
  std::string name_;
  NormKind kind_;
  std::int64_t dim_ = 0;
  Param gain_;  // [1 x dim], non-trainable
  Param bias_;  // [1 x dim], trainable (LayerNorm only)
  // Backward caches.
  Matrix x_cache_;
  std::vector<float> inv_std_cache_;  // per row
  std::vector<float> mean_cache_;     // per row (LayerNorm)
};

}  // namespace nora::nn
