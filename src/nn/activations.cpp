#include "nn/activations.hpp"

#include <cmath>

namespace nora::nn {

namespace {
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluCubic = 0.044715f;
}  // namespace

float gelu(float x) {
  // tanh approximation (Hendrycks & Gimpel), matching common LLM stacks.
  const float u = kSqrt2OverPi * (x + kGeluCubic * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

float gelu_grad(float x) {
  const float u = kSqrt2OverPi * (x + kGeluCubic * x * x * x);
  const float t = std::tanh(u);
  const float du = kSqrt2OverPi * (1.0f + 3.0f * kGeluCubic * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

float silu(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return x * s;
}

float silu_grad(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s + x * s * (1.0f - s);
}

}  // namespace nora::nn
