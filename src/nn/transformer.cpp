#include "nn/transformer.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace nora::nn {

std::int64_t TransformerConfig::param_count() const {
  const std::int64_t gate = mlp_kind == MlpKind::kSiluGated ? d_model * d_ff : 0;
  const std::int64_t per_block = d_model * 3 * d_model + 3 * d_model   // qkv
                                 + d_model * d_model + d_model         // out
                                 + n_heads * max_seq                   // rel bias
                                 + 2 * d_model * d_ff + gate + d_ff + d_model  // mlp
                                 + 4 * d_model;                        // norms
  return vocab_size * d_model + max_seq * d_model + n_layers * per_block +
         2 * d_model + d_model * vocab_size + vocab_size;
}

namespace {
util::Rng make_init_rng(const TransformerConfig& cfg) {
  return util::Rng(util::derive_seed(cfg.seed, "init"));
}
}  // namespace

void TransformerLM::init_cache_blocks(KvCache& cache) const {
  cache.blocks.resize(blocks_.size());
  // Reserve each layer's K/V at the slab capacity (serve) or the model
  // horizon, so the per-step in-place appends never touch the allocator.
  const std::int64_t horizon =
      cache.capacity > 0 ? std::min(cache.capacity, cfg_.max_seq)
                         : cfg_.max_seq;
  for (KvCache::BlockCache& b : cache.blocks) {
    b.k = Matrix(0, cfg_.d_model);
    b.v = Matrix(0, cfg_.d_model);
    b.k.reserve_rows(horizon);
    b.v.reserve_rows(horizon);
  }
}

TransformerLM::TransformerLM(TransformerConfig cfg)
    : cfg_(std::move(cfg)),
      final_norm_("final_norm", cfg_.norm_kind, cfg_.d_model),
      lm_head_([&] {
        util::Rng rng(util::derive_seed(cfg_.seed, "head"));
        return Linear("lm_head", cfg_.d_model, cfg_.vocab_size, rng, cfg_.init_std);
      }()) {
  if (cfg_.d_model % cfg_.n_heads != 0) {
    throw std::invalid_argument("TransformerLM: d_model % n_heads != 0");
  }
  if (!cfg_.norm_gain.empty() &&
      static_cast<std::int64_t>(cfg_.norm_gain.size()) != cfg_.d_model) {
    throw std::invalid_argument("TransformerLM: norm_gain length mismatch");
  }
  util::Rng rng = make_init_rng(cfg_);
  Matrix te(cfg_.vocab_size, cfg_.d_model);
  te.fill_gaussian(rng, cfg_.init_std);
  tok_emb_ = Param("tok_emb", std::move(te));
  if (cfg_.tie_head_init) {
    lm_head_.weight().value = tok_emb_.value.transposed();
  }
  Matrix pe(cfg_.max_seq, cfg_.d_model);
  pe.fill_gaussian(rng, cfg_.init_std);
  pos_emb_ = Param("pos_emb", std::move(pe));
  blocks_.reserve(static_cast<std::size_t>(cfg_.n_layers));
  for (std::int64_t l = 0; l < cfg_.n_layers; ++l) {
    blocks_.emplace_back("blk" + std::to_string(l), cfg_.norm_kind, cfg_.mlp_kind,
                         cfg_.d_model, cfg_.n_heads, cfg_.d_ff, cfg_.max_seq,
                         cfg_.norm_gain, rng, cfg_.init_std);
  }
}

Matrix TransformerLM::forward(std::span<const int> tokens, bool training) {
  const std::int64_t t_len = static_cast<std::int64_t>(tokens.size());
  if (t_len == 0 || t_len > cfg_.max_seq) {
    throw std::invalid_argument("TransformerLM::forward: bad sequence length");
  }
  Matrix x(t_len, cfg_.d_model);
  for (std::int64_t t = 0; t < t_len; ++t) {
    const int id = tokens[static_cast<std::size_t>(t)];
    if (id < 0 || id >= cfg_.vocab_size) {
      throw std::invalid_argument("TransformerLM::forward: token id out of range");
    }
    auto xr = x.row(t);
    const auto er = tok_emb_.value.row(id);
    const auto pr = pos_emb_.value.row(t);
    for (std::int64_t c = 0; c < cfg_.d_model; ++c) xr[c] = er[c] + pr[c];
  }
  if (training) tokens_cache_.assign(tokens.begin(), tokens.end());
  for (auto& block : blocks_) x = block.forward(x, training);
  x = final_norm_.forward(x, training);
  return lm_head_.forward(x, training);
}

void TransformerLM::backward(const Matrix& dlogits) {
  if (tokens_cache_.empty() ||
      static_cast<std::int64_t>(tokens_cache_.size()) != dlogits.rows()) {
    throw std::logic_error("TransformerLM::backward: no matching forward");
  }
  Matrix dx = final_norm_.backward(lm_head_.backward(dlogits));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    dx = it->backward(dx);
  }
  for (std::int64_t t = 0; t < dx.rows(); ++t) {
    const int id = tokens_cache_[static_cast<std::size_t>(t)];
    auto ge = tok_emb_.grad.row(id);
    auto gp = pos_emb_.grad.row(t);
    const auto dr = dx.row(t);
    for (std::int64_t c = 0; c < cfg_.d_model; ++c) {
      ge[c] += dr[c];
      gp[c] += dr[c];
    }
  }
}

Matrix TransformerLM::forward_cached(std::span<const int> tokens,
                                     KvCache& cache) {
  const std::int64_t t_new = static_cast<std::int64_t>(tokens.size());
  const std::int64_t pos0 = cache.length;
  if (t_new == 0) {
    throw std::invalid_argument("forward_cached: bad sequence length");
  }
  // Fail here, by name, before any layer state is touched — not layers
  // deep in the attention rel_bias guard.
  if (pos0 + t_new > cfg_.max_seq) {
    throw KvCacheOverflow(pos0, t_new, cfg_.max_seq, "model max_seq");
  }
  if (cache.capacity > 0 && pos0 + t_new > cache.capacity) {
    throw KvCacheOverflow(pos0, t_new, cache.capacity, "cache capacity");
  }
  if (cache.blocks.empty()) {
    init_cache_blocks(cache);
  } else if (cache.blocks.size() != blocks_.size()) {
    throw std::invalid_argument("forward_cached: cache from another model");
  }
  Matrix x(t_new, cfg_.d_model);
  for (std::int64_t t = 0; t < t_new; ++t) {
    const int id = tokens[static_cast<std::size_t>(t)];
    if (id < 0 || id >= cfg_.vocab_size) {
      throw std::invalid_argument("forward_cached: token id out of range");
    }
    auto xr = x.row(t);
    const auto er = tok_emb_.value.row(id);
    const auto pr = pos_emb_.value.row(pos0 + t);
    for (std::int64_t c = 0; c < cfg_.d_model; ++c) xr[c] = er[c] + pr[c];
  }
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    x = blocks_[l].forward_cached(x, cache.blocks[l], pos0);
  }
  cache.length = pos0 + t_new;
  x = final_norm_.forward(x);
  return lm_head_.forward(x);
}

Matrix TransformerLM::forward_serve(std::span<const ServeSegment> segments) {
  // Validate every segment before touching any cache, so a bad request
  // cannot leave the batch half-applied.
  std::int64_t total = 0;
  for (const ServeSegment& seg : segments) {
    if (seg.cache == nullptr || seg.tokens.empty()) {
      throw std::invalid_argument("forward_serve: bad segment");
    }
    if (seg.base_len < 0 || (seg.base_len > 0) != (seg.base != nullptr)) {
      throw std::invalid_argument("forward_serve: bad prefix base");
    }
    if (seg.base != nullptr &&
        (seg.base->length < seg.base_len ||
         seg.base->blocks.size() != blocks_.size())) {
      throw std::invalid_argument("forward_serve: prefix base out of sync");
    }
    const std::int64_t t_new = static_cast<std::int64_t>(seg.tokens.size());
    // Global position: shared prefix rows + the private cache's rows.
    const std::int64_t pos0 = seg.base_len + seg.cache->length;
    if (pos0 + t_new > cfg_.max_seq) {
      throw KvCacheOverflow(pos0, t_new, cfg_.max_seq, "model max_seq");
    }
    // The capacity guard is on the PRIVATE slab: that is what the pool
    // leased (the shared rows are budgeted with their own entry).
    if (seg.cache->capacity > 0 &&
        seg.cache->length + t_new > seg.cache->capacity) {
      throw KvCacheOverflow(seg.cache->length, t_new, seg.cache->capacity,
                            "cache capacity");
    }
    if (seg.cache->blocks.empty()) {
      init_cache_blocks(*seg.cache);
    } else if (seg.cache->blocks.size() != blocks_.size()) {
      throw std::invalid_argument("forward_serve: cache from another model");
    }
    for (const int id : seg.tokens) {
      if (id < 0 || id >= cfg_.vocab_size) {
        throw std::invalid_argument("forward_serve: token id out of range");
      }
    }
    total += t_new;
  }
  if (total == 0) {
    throw std::invalid_argument("forward_serve: empty batch");
  }
  // Embeddings + per-row stream keys (request stream, request-local
  // position): the keys make every analog tile pass independent of the
  // batch composition.
  Matrix x(total, cfg_.d_model);
  std::vector<cim::StreamKey>& keys = serve_keys_;
  keys.assign(static_cast<std::size_t>(total), cim::StreamKey{});
  std::vector<AttnServeSeq>& seqs = serve_seqs_;
  seqs.assign(segments.size(), AttnServeSeq{});
  std::int64_t r = 0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const ServeSegment& seg = segments[s];
    // Positions and keys are GLOBAL (prefix included), so the rows this
    // segment computes are bit-identical to the cold run that would
    // have recomputed the shared prefix itself.
    const std::int64_t pos0 = seg.base_len + seg.cache->length;
    for (std::size_t t = 0; t < seg.tokens.size(); ++t) {
      const std::int64_t pos = pos0 + static_cast<std::int64_t>(t);
      auto xr = x.row(r);
      const auto er = tok_emb_.value.row(seg.tokens[t]);
      const auto pr = pos_emb_.value.row(pos);
      for (std::int64_t c = 0; c < cfg_.d_model; ++c) xr[c] = er[c] + pr[c];
      keys[static_cast<std::size_t>(r)] = {seg.stream,
                                           static_cast<std::uint64_t>(pos)};
      ++r;
    }
    seqs[s] = {nullptr, nullptr, seg.base_len, pos0,
               static_cast<std::int64_t>(seg.tokens.size())};
  }
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    for (std::size_t s = 0; s < segments.size(); ++s) {
      seqs[s].cache = &segments[s].cache->blocks[l];
      seqs[s].base = segments[s].base != nullptr
                         ? &segments[s].base->blocks[l]
                         : nullptr;
    }
    x = blocks_[l].forward_serve(x, seqs, keys);
  }
  for (const ServeSegment& seg : segments) {
    seg.cache->length += static_cast<std::int64_t>(seg.tokens.size());
  }
  x = final_norm_.forward(x);
  return lm_head_.forward_keyed(x, keys);
}

std::vector<int> TransformerLM::generate(std::span<const int> prompt,
                                         int max_new_tokens) {
  if (prompt.empty()) throw std::invalid_argument("generate: empty prompt");
  KvCache cache;
  Matrix logits = forward_cached(prompt, cache);
  std::vector<int> out;
  for (int step = 0; step < max_new_tokens && cache.length < cfg_.max_seq;
       ++step) {
    const auto last = logits.row(logits.rows() - 1);
    int best = 0;
    for (std::int64_t v = 1; v < cfg_.vocab_size; ++v) {
      if (last[v] > last[best]) best = static_cast<int>(v);
    }
    out.push_back(best);
    if (cache.length >= cfg_.max_seq) break;
    const int next[] = {best};
    if (cache.length + 1 > cfg_.max_seq) break;
    logits = forward_cached(next, cache);
  }
  return out;
}

int TransformerLM::predict_next(std::span<const int> tokens) {
  const Matrix logits = forward(tokens, /*training=*/false);
  const auto last = logits.row(logits.rows() - 1);
  int best = 0;
  for (std::int64_t v = 1; v < cfg_.vocab_size; ++v) {
    if (last[v] > last[best]) best = static_cast<int>(v);
  }
  return best;
}

ParamRefs TransformerLM::collect_params() {
  ParamRefs out;
  out.push_back(&tok_emb_);
  out.push_back(&pos_emb_);
  for (auto& block : blocks_) block.collect_params(out);
  final_norm_.collect_params(out);
  lm_head_.collect_params(out);
  return out;
}

void TransformerLM::zero_grads() {
  for (Param* p : collect_params()) p->zero_grad();
}

std::vector<Linear*> TransformerLM::linear_layers() {
  std::vector<Linear*> out;
  for (auto& block : blocks_) block.collect_linears(out);
  out.push_back(&lm_head_);
  return out;
}

bool TransformerLM::is_analog() const {
  for (auto* lin : const_cast<TransformerLM*>(this)->linear_layers()) {
    if (lin->is_analog()) return true;
  }
  return false;
}

void TransformerLM::to_digital() {
  for (auto* lin : linear_layers()) lin->to_digital();
}

void TransformerLM::set_digital_bypass(bool on) {
  for (auto* lin : linear_layers()) lin->set_digital_bypass(on);
}

}  // namespace nora::nn
