// Pre-LN transformer decoder block:
//   x = x + Attn(Norm1(x));  x = x + Mlp(Norm2(x))
#pragma once

#include <string>
#include <vector>

#include "nn/attention.hpp"
#include "nn/mlp.hpp"
#include "nn/norm.hpp"

namespace nora::nn {

class TransformerBlock {
 public:
  TransformerBlock(const std::string& name, NormKind norm_kind, MlpKind mlp_kind,
                   std::int64_t d_model, std::int64_t n_heads, std::int64_t d_ff,
                   std::int64_t max_seq, std::vector<float> norm_gain,
                   util::Rng& rng, float init_std);

  Matrix forward(const Matrix& x, bool training = false);
  Matrix backward(const Matrix& dy);
  /// KV-cached incremental forward (inference only).
  Matrix forward_cached(const Matrix& x, KvCache::BlockCache& cache,
                        std::int64_t pos0);

  Norm& norm1() { return norm1_; }
  Norm& norm2() { return norm2_; }
  CausalSelfAttention& attention() { return attn_; }
  Mlp& mlp() { return mlp_; }

  void collect_params(ParamRefs& out);
  void collect_linears(std::vector<Linear*>& out);

 private:
  Norm norm1_;
  CausalSelfAttention attn_;
  Norm norm2_;
  Mlp mlp_;
};

}  // namespace nora::nn
