// Pre-LN transformer decoder block:
//   x = x + Attn(Norm1(x));  x = x + Mlp(Norm2(x))
#pragma once

#include <string>
#include <vector>

#include "nn/attention.hpp"
#include "nn/mlp.hpp"
#include "nn/norm.hpp"

namespace nora::nn {

class TransformerBlock {
 public:
  TransformerBlock(const std::string& name, NormKind norm_kind, MlpKind mlp_kind,
                   std::int64_t d_model, std::int64_t n_heads, std::int64_t d_ff,
                   std::int64_t max_seq, std::vector<float> norm_gain,
                   util::Rng& rng, float init_std);

  Matrix forward(const Matrix& x, bool training = false);
  Matrix backward(const Matrix& dy);
  /// KV-cached incremental forward (inference only).
  Matrix forward_cached(const Matrix& x, KvCache::BlockCache& cache,
                        std::int64_t pos0);
  /// Batched serving forward over several sequences' segments (see
  /// CausalSelfAttention::forward_serve); norms and the MLP are
  /// row-wise, attention is per-segment.
  Matrix forward_serve(const Matrix& x, std::span<const AttnServeSeq> seqs,
                       std::span<const cim::StreamKey> keys);

  Norm& norm1() { return norm1_; }
  Norm& norm2() { return norm2_; }
  CausalSelfAttention& attention() { return attn_; }
  Mlp& mlp() { return mlp_; }

  void collect_params(ParamRefs& out);
  void collect_linears(std::vector<Linear*>& out);

 private:
  Norm norm1_;
  CausalSelfAttention attn_;
  Norm norm2_;
  Mlp mlp_;
};

}  // namespace nora::nn
