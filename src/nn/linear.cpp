#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "quant/int8_linear.hpp"
#include "tensor/ops.hpp"
#include "timing/trace.hpp"
#include "util/thread_pool.hpp"

namespace nora::nn {

Linear::Linear(std::string name, std::int64_t in_dim, std::int64_t out_dim,
               util::Rng& rng, float init_std)
    : name_(std::move(name)) {
  Matrix w(in_dim, out_dim);
  w.fill_gaussian(rng, init_std);
  w_ = Param(name_ + ".w", std::move(w));
  b_ = Param(name_ + ".b", Matrix(1, out_dim));
  input_abs_max_.assign(static_cast<std::size_t>(in_dim), 0.0f);
}

void Linear::record_timing(std::int64_t rows) const {
  // Emitted from the thread driving the forward pass (never from pool
  // workers), so the trace order is a pure function of the workload.
  timing::Trace* trace = timing::active_trace();
  if (trace == nullptr) return;
  timing::TimingOp op;
  op.layer = name_;
  op.rows = rows;
  op.k = in_dim();
  op.n = out_dim();
  op.macs = rows * op.k * op.n;
  op.chip = timing_chip_;
  if (analog_ && !digital_bypass_) {
    op.kind = timing::OpKind::kAnalogMvm;
    op.row_blocks = analog_->row_blocks();
    op.col_blocks = analog_->col_blocks();
    // Multi-chip stamps mirror the EXECUTED shard plan, so the timing
    // co-sim models exactly the partitioning the bits ran under.
    if (const cim::ShardPlan* plan = analog_->shard_plan();
        plan != nullptr && plan->n_chips > 1) {
      op.tp_chips = plan->n_chips;
      op.tp_axis = plan->axis == cim::ShardAxis::kRowBlocks
                       ? timing::ShardAxis::kRowBlocks
                       : timing::ShardAxis::kColBlocks;
    }
  } else if (int8_ && !digital_bypass_) {
    op.kind = timing::OpKind::kInt8Gemm;
  } else {
    op.kind = timing::OpKind::kDigitalGemm;
  }
  trace->ops.push_back(std::move(op));
}

Matrix Linear::forward(const Matrix& x, bool training) {
  if (x.cols() != in_dim()) {
    throw std::invalid_argument("Linear::forward: input dim mismatch (" + name_ + ")");
  }
  if (capture_input_) {
    // Per-column running abs-max. Columns are independent and max() is
    // order-insensitive, so the column fan-out is exact for any thread
    // count.
    const std::int64_t rows = x.rows();
    const std::int64_t cols = x.cols();
    const float* data = x.data();
    util::ThreadPool::global().parallel_for(
        cols,
        [&](std::int64_t c) {
          float m = input_abs_max_[static_cast<std::size_t>(c)];
          for (std::int64_t t = 0; t < rows; ++t) {
            m = std::max(m, std::fabs(data[t * cols + c]));
          }
          input_abs_max_[static_cast<std::size_t>(c)] = m;
        },
        /*grain=*/64);
  }
  if (capture_full_) {
    Matrix grown(captured_inputs_.rows() + x.rows(), in_dim());
    std::copy(captured_inputs_.data(),
              captured_inputs_.data() + captured_inputs_.size(), grown.data());
    std::copy(x.data(), x.data() + x.size(),
              grown.data() + captured_inputs_.size());
    captured_inputs_ = std::move(grown);
  }
  record_timing(x.rows());
  Matrix y = analog_ && !digital_bypass_ ? analog_->forward(x)
             : int8_ && !digital_bypass_
                 ? quant::int8_linear(x, w_.value, int8_s_, nullptr,
                                      int8_static_scale_)
                 : ops::matmul(x, w_.value);
  ops::add_row_vector(y, b_.value.row(0));
  if (training) {
    if (analog_ || int8_) {
      throw std::logic_error("Linear: cannot train through a quantized backend");
    }
    x_cache_ = x;
  }
  return y;
}

Matrix Linear::forward_keyed(const Matrix& x,
                             std::span<const cim::StreamKey> keys) {
  if (x.cols() != in_dim()) {
    throw std::invalid_argument("Linear::forward_keyed: input dim mismatch (" +
                                name_ + ")");
  }
  record_timing(x.rows());
  Matrix y = analog_ && !digital_bypass_ ? analog_->forward(x, keys)
             : int8_ && !digital_bypass_
                 ? quant::int8_linear(x, w_.value, int8_s_, nullptr,
                                      int8_static_scale_)
                 : ops::matmul(x, w_.value);
  ops::add_row_vector(y, b_.value.row(0));
  return y;
}

Matrix Linear::backward(const Matrix& dy) {
  if (analog_ || int8_) {
    throw std::logic_error("Linear::backward: quantized backend");
  }
  if (x_cache_.rows() != dy.rows()) {
    throw std::logic_error("Linear::backward: no matching forward cache");
  }
  // dW += X^T dY ; db += column sums of dY ; dX = dY W^T.
  ops::matmul_acc(x_cache_.transposed(), dy, w_.grad);
  auto db = b_.grad.row(0);
  for (std::int64_t t = 0; t < dy.rows(); ++t) {
    const auto row = dy.row(t);
    for (std::int64_t c = 0; c < dy.cols(); ++c) db[c] += row[c];
  }
  return ops::matmul_bt(dy, w_.value);
}

void Linear::to_analog(const cim::TileConfig& cfg, std::vector<float> s,
                       std::uint64_t seed) {
  int8_ = false;
  analog_ = std::make_unique<cim::AnalogMatmul>(w_.value, std::move(s), cfg, seed);
  analog_->set_label(name_);
}

void Linear::to_int8(std::vector<float> s, float static_act_scale) {
  if (!s.empty() && static_cast<std::int64_t>(s.size()) != in_dim()) {
    throw std::invalid_argument("Linear::to_int8: s length mismatch");
  }
  analog_.reset();
  int8_ = true;
  int8_s_ = std::move(s);
  int8_static_scale_ = static_act_scale;
}

void Linear::to_digital() {
  analog_.reset();
  int8_ = false;
  int8_s_.clear();
  int8_static_scale_ = 0.0f;
}

void Linear::set_capture_input(bool on) {
  capture_input_ = on;
  if (on) input_abs_max_.assign(static_cast<std::size_t>(in_dim()), 0.0f);
}

void Linear::set_capture_full(bool on) {
  capture_full_ = on;
  if (on) captured_inputs_ = Matrix(0, in_dim());
}

std::vector<float> Linear::weight_row_abs_max() const {
  return ops::row_abs_max(w_.value);
}

void Linear::collect_params(ParamRefs& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

}  // namespace nora::nn
