// Deployment report: which layers run analog, which were repaired, and
// which fell back to the digital path — and why.
//
// Produced by core::deploy_analog when a HealthPolicy is active (or a
// report is requested). A layer degrades to digital when its residual
// fault density after repair, its probe-time ADC saturation rate, or a
// non-finite probe output exceeds the policy's thresholds; the report is
// the operator-facing record of those decisions.
#pragma once

#include <string>
#include <vector>

#include "faults/repair.hpp"

namespace nora::faults {

struct LayerReport {
  std::string layer;
  bool analog = true;       // false: fell back to the digital backend
  std::string reason;       // empty when healthy; else why it degraded
  ArrayFaultStats faults;   // program-time fault / repair statistics
  double adc_saturation_rate = 0.0;  // from the health probe (0 if none)
  bool nonfinite_output = false;     // probe produced NaN/Inf

  // --- runtime integrity (filled by runtime::IntegrityMonitor) ---
  std::int64_t runtime_rereads = 0;    // escalation rung 1: analog re-read
  std::int64_t runtime_refreshes = 0;  // rung 2: reprogram from seed
  bool runtime_fallback = false;       // rung 3: degraded mid-service
  std::string runtime_reason;          // last escalation trigger
  std::int64_t abft_checks = 0;        // checksum-column reads observed
  std::int64_t abft_flags = 0;         // reads beyond threshold
  double abft_flag_ewma = 0.0;         // watchdog EWMA of the flag rate
  double adc_saturation_ewma = 0.0;    // watchdog EWMA of the ADC sat rate
};

struct DeploymentReport {
  std::vector<LayerReport> layers;

  int analog_layers() const;
  int digital_fallbacks() const;
  int repaired_layers() const;  // any spare remap or reprogram activity

  // Runtime-integrity totals over all layers (all zero when no
  // IntegrityMonitor ran).
  std::int64_t runtime_rereads() const;
  std::int64_t runtime_refreshes() const;
  int runtime_fallbacks() const;

  const LayerReport* find(const std::string& layer) const;
  LayerReport* find(const std::string& layer);

  /// Human-readable multi-line summary.
  std::string to_string() const;
};

}  // namespace nora::faults
