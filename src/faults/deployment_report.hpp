// Deployment report: which layers run analog, which were repaired, and
// which fell back to the digital path — and why.
//
// Produced by core::deploy_analog when a HealthPolicy is active (or a
// report is requested). A layer degrades to digital when its residual
// fault density after repair, its probe-time ADC saturation rate, or a
// non-finite probe output exceeds the policy's thresholds; the report is
// the operator-facing record of those decisions.
#pragma once

#include <string>
#include <vector>

#include "faults/repair.hpp"

namespace nora::faults {

struct LayerReport {
  std::string layer;
  bool analog = true;       // false: fell back to the digital backend
  std::string reason;       // empty when healthy; else why it degraded
  ArrayFaultStats faults;   // program-time fault / repair statistics
  double adc_saturation_rate = 0.0;  // from the health probe (0 if none)
  bool nonfinite_output = false;     // probe produced NaN/Inf
};

struct DeploymentReport {
  std::vector<LayerReport> layers;

  int analog_layers() const;
  int digital_fallbacks() const;
  int repaired_layers() const;  // any spare remap or reprogram activity

  const LayerReport* find(const std::string& layer) const;

  /// Human-readable multi-line summary.
  std::string to_string() const;
};

}  // namespace nora::faults
