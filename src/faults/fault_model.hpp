// Hard-fault models for analog CIM tiles.
//
// The eight noise non-idealities of the paper (Table I) all assume a
// *working* device; fabricated PCM/ReRAM arrays additionally ship with
// stuck-at devices, broken word/bit lines and whole-tile yield loss,
// which dominate the accuracy loss of deployed accelerators [Xiao et
// al.]. This module models those defects as a per-tile FaultMap sampled
// once at program time:
//
//   - stuck-at-zero: the differential pair reads 0 regardless of the
//     programmed target (open device / blown access transistor),
//   - stuck-at-gmax: one device of the pair is shorted at g_max, so the
//     weight reads +1 or -1 in the normalized conductance domain,
//   - dead row: a broken wordline — every device on the row is an open,
//   - dead column: a broken bitline — the whole column reads zero,
//   - tile yield: with probability (1 - tile_yield) the entire tile is
//     non-functional (all devices stuck at zero).
//
// All sampling is deterministic given the construction RNG, and a
// default-constructed FaultConfig samples nothing and consumes no
// randomness, so fault-free configurations are bit-identical to a build
// without this subsystem.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace nora::faults {

/// Per-device defect class, sampled at program time.
enum class DeviceFault : std::uint8_t {
  kNone = 0,
  kStuckZero,     // reads 0 (open device, dead row/col, dead tile)
  kStuckGmaxPos,  // positive device of the pair shorted: reads +1
  kStuckGmaxNeg,  // negative device of the pair shorted: reads -1
};

struct FaultConfig {
  float stuck_zero_rate = 0.0f;  // per-device probability
  float stuck_gmax_rate = 0.0f;  // per-device probability (sign is fair)
  float dead_row_rate = 0.0f;    // per physical row (wordline) probability
  float dead_col_rate = 0.0f;    // per physical column (bitline) probability
  float tile_yield = 1.0f;       // probability the tile works at all

  bool any() const {
    return stuck_zero_rate > 0.0f || stuck_gmax_rate > 0.0f ||
           dead_row_rate > 0.0f || dead_col_rate > 0.0f || tile_yield < 1.0f;
  }
};

/// The sampled defect map of one physical tile, stored column-major
/// ([cols x rows]) to match AnalogTile's transposed conductance layout.
/// `cols` is the *physical* column count (logical columns + spares).
class FaultMap {
 public:
  FaultMap() = default;

  /// Sample every defect class once. Draw order is fixed (tile, rows,
  /// cols, then devices column-major) so maps are reproducible.
  static FaultMap sample(std::int64_t rows, std::int64_t cols,
                         const FaultConfig& cfg, util::Rng& rng);

  bool empty() const { return device_.empty(); }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  DeviceFault at(std::int64_t col, std::int64_t row) const {
    return static_cast<DeviceFault>(
        device_[static_cast<std::size_t>(col * rows_ + row)]);
  }

  bool tile_dead() const { return tile_dead_; }
  std::int64_t dead_rows() const { return n_dead_rows_; }
  std::int64_t dead_cols() const { return n_dead_cols_; }
  std::int64_t stuck_zero_count() const { return n_stuck_zero_; }
  std::int64_t stuck_gmax_count() const { return n_stuck_gmax_; }

  /// Faulty devices in one physical column.
  std::int64_t faulty_in_column(std::int64_t col) const {
    return col_fault_count_[static_cast<std::size_t>(col)];
  }
  double column_fault_fraction(std::int64_t col) const {
    return rows_ > 0 ? static_cast<double>(faulty_in_column(col)) /
                           static_cast<double>(rows_)
                     : 0.0;
  }
  /// Faulty devices over the whole physical tile.
  std::int64_t faulty_total() const { return n_faulty_; }
  double fault_fraction() const {
    const std::int64_t n = rows_ * cols_;
    return n > 0 ? static_cast<double>(n_faulty_) / static_cast<double>(n)
                 : 0.0;
  }

  /// Force the stuck conductances of physical column `col` onto a
  /// programmed (normalized, differential) column of `rows()` values.
  /// Healthy devices are left untouched.
  void apply_to_column(std::int64_t col, std::span<float> col_vals) const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  bool tile_dead_ = false;
  std::int64_t n_dead_rows_ = 0;
  std::int64_t n_dead_cols_ = 0;
  std::int64_t n_stuck_zero_ = 0;
  std::int64_t n_stuck_gmax_ = 0;
  std::int64_t n_faulty_ = 0;
  std::vector<std::uint8_t> device_;           // [cols * rows]
  std::vector<std::int64_t> col_fault_count_;  // [cols]
};

}  // namespace nora::faults
