#include "faults/fault_model.hpp"

#include <stdexcept>

namespace nora::faults {

FaultMap FaultMap::sample(std::int64_t rows, std::int64_t cols,
                          const FaultConfig& cfg, util::Rng& rng) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("FaultMap::sample: empty tile geometry");
  }
  FaultMap map;
  map.rows_ = rows;
  map.cols_ = cols;
  map.device_.assign(static_cast<std::size_t>(rows * cols),
                     static_cast<std::uint8_t>(DeviceFault::kNone));
  map.col_fault_count_.assign(static_cast<std::size_t>(cols), 0);

  map.tile_dead_ = cfg.tile_yield < 1.0f && rng.bernoulli(1.0 - cfg.tile_yield);

  std::vector<bool> dead_row(static_cast<std::size_t>(rows), false);
  if (cfg.dead_row_rate > 0.0f) {
    for (std::int64_t k = 0; k < rows; ++k) {
      if (rng.bernoulli(cfg.dead_row_rate)) {
        dead_row[static_cast<std::size_t>(k)] = true;
        ++map.n_dead_rows_;
      }
    }
  }
  std::vector<bool> dead_col(static_cast<std::size_t>(cols), false);
  if (cfg.dead_col_rate > 0.0f) {
    for (std::int64_t j = 0; j < cols; ++j) {
      if (rng.bernoulli(cfg.dead_col_rate)) {
        dead_col[static_cast<std::size_t>(j)] = true;
        ++map.n_dead_cols_;
      }
    }
  }

  const double p_zero = cfg.stuck_zero_rate;
  const double p_gmax = cfg.stuck_gmax_rate;
  const bool device_faults = p_zero > 0.0 || p_gmax > 0.0;
  for (std::int64_t j = 0; j < cols; ++j) {
    std::int64_t col_faults = 0;
    for (std::int64_t k = 0; k < rows; ++k) {
      DeviceFault f = DeviceFault::kNone;
      if (map.tile_dead_ || dead_row[static_cast<std::size_t>(k)] ||
          dead_col[static_cast<std::size_t>(j)]) {
        f = DeviceFault::kStuckZero;
      } else if (device_faults) {
        const double u = rng.uniform();
        if (u < p_zero) {
          f = DeviceFault::kStuckZero;
        } else if (u < p_zero + p_gmax) {
          f = rng.bernoulli(0.5) ? DeviceFault::kStuckGmaxPos
                                 : DeviceFault::kStuckGmaxNeg;
        }
      }
      if (f != DeviceFault::kNone) {
        map.device_[static_cast<std::size_t>(j * rows + k)] =
            static_cast<std::uint8_t>(f);
        ++col_faults;
        if (f == DeviceFault::kStuckZero) {
          ++map.n_stuck_zero_;
        } else {
          ++map.n_stuck_gmax_;
        }
      }
    }
    map.col_fault_count_[static_cast<std::size_t>(j)] = col_faults;
    map.n_faulty_ += col_faults;
  }
  return map;
}

void FaultMap::apply_to_column(std::int64_t col,
                               std::span<float> col_vals) const {
  if (empty()) return;
  if (col < 0 || col >= cols_ ||
      static_cast<std::int64_t>(col_vals.size()) != rows_) {
    throw std::invalid_argument("FaultMap::apply_to_column: bad geometry");
  }
  const std::uint8_t* f = device_.data() + col * rows_;
  for (std::int64_t k = 0; k < rows_; ++k) {
    switch (static_cast<DeviceFault>(f[k])) {
      case DeviceFault::kNone:
        break;
      case DeviceFault::kStuckZero:
        col_vals[static_cast<std::size_t>(k)] = 0.0f;
        break;
      case DeviceFault::kStuckGmaxPos:
        col_vals[static_cast<std::size_t>(k)] = 1.0f;
        break;
      case DeviceFault::kStuckGmaxNeg:
        col_vals[static_cast<std::size_t>(k)] = -1.0f;
        break;
    }
  }
}

}  // namespace nora::faults
