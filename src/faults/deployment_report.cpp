#include "faults/deployment_report.hpp"

#include <cstdio>

namespace nora::faults {

int DeploymentReport::analog_layers() const {
  int n = 0;
  for (const auto& l : layers) n += l.analog ? 1 : 0;
  return n;
}

int DeploymentReport::digital_fallbacks() const {
  return static_cast<int>(layers.size()) - analog_layers();
}

int DeploymentReport::repaired_layers() const {
  int n = 0;
  for (const auto& l : layers) {
    if (l.faults.cols_remapped > 0 || l.faults.reprogram_devices > 0) ++n;
  }
  return n;
}

std::int64_t DeploymentReport::runtime_rereads() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.runtime_rereads;
  return n;
}

std::int64_t DeploymentReport::runtime_refreshes() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.runtime_refreshes;
  return n;
}

int DeploymentReport::runtime_fallbacks() const {
  int n = 0;
  for (const auto& l : layers) n += l.runtime_fallback ? 1 : 0;
  return n;
}

const LayerReport* DeploymentReport::find(const std::string& layer) const {
  for (const auto& l : layers) {
    if (l.layer == layer) return &l;
  }
  return nullptr;
}

LayerReport* DeploymentReport::find(const std::string& layer) {
  for (auto& l : layers) {
    if (l.layer == layer) return &l;
  }
  return nullptr;
}

std::string DeploymentReport::to_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "deployment report: %d analog, %d digital fallback, "
                "%d repaired\n",
                analog_layers(), digital_fallbacks(), repaired_layers());
  out += buf;
  for (const auto& l : layers) {
    std::snprintf(
        buf, sizeof buf,
        "  %-28s %-7s fault %.4f -> %.4f  remapped %lld  reprogrammed %lld "
        "(failed %lld)  adc-sat %.3f",
        l.layer.c_str(), l.analog ? "analog" : "DIGITAL",
        l.faults.raw_fault_fraction(), l.faults.residual_fault_fraction(),
        static_cast<long long>(l.faults.cols_remapped),
        static_cast<long long>(l.faults.reprogram_devices),
        static_cast<long long>(l.faults.verify_failures),
        l.adc_saturation_rate);
    out += buf;
    if (!l.reason.empty()) {
      out += "  [";
      out += l.reason;
      out += "]";
    }
    out += "\n";
    // Runtime line only when an IntegrityMonitor actually watched the
    // layer — deploy-time-only reports stay byte-identical.
    if (l.runtime_rereads > 0 || l.runtime_refreshes > 0 ||
        l.runtime_fallback || l.abft_checks > 0) {
      std::snprintf(
          buf, sizeof buf,
          "    runtime: abft %lld/%lld flagged (ewma %.4f)  adc-sat ewma "
          "%.4f  rereads %lld  refreshes %lld%s",
          static_cast<long long>(l.abft_flags),
          static_cast<long long>(l.abft_checks), l.abft_flag_ewma,
          l.adc_saturation_ewma, static_cast<long long>(l.runtime_rereads),
          static_cast<long long>(l.runtime_refreshes),
          l.runtime_fallback ? "  FELL BACK" : "");
      out += buf;
      if (!l.runtime_reason.empty()) {
        out += "  [";
        out += l.runtime_reason;
        out += "]";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace nora::faults
