// Repair bookkeeping for fault-tolerant analog deployment.
//
// Two repair mechanisms act at program time inside AnalogTile:
//   1. program-verify-reprogram: after programming, conductances are
//      read back and devices outside `program_tolerance` of their target
//      are re-programmed, up to `max_program_retries` rounds;
//   2. spare-column remapping: each physical tile reserves `spare_cols`
//      columns, and a logical column whose fault density exceeds
//      `spare_remap_threshold` is remapped onto the cleanest spare.
//
// These structs record what each mechanism did, per tile and aggregated
// per tile array, so the deployment health check (core::deploy_analog)
// can decide whether a layer is fit for analog execution.
#pragma once

#include <cstdint>

namespace nora::faults {

/// Program-time fault and repair statistics of one physical tile.
struct TileRepairStats {
  std::int64_t devices = 0;          // logical devices (rows * logical cols)
  std::int64_t physical_devices = 0; // rows * (logical cols + spares)
  std::int64_t faulty_devices = 0;   // over the full physical tile
  std::int64_t stuck_zero = 0;
  std::int64_t stuck_gmax = 0;
  std::int64_t dead_rows = 0;
  std::int64_t dead_cols = 0;
  bool tile_dead = false;

  std::int64_t spare_cols = 0;
  std::int64_t cols_remapped = 0;       // logical columns moved onto spares
  std::int64_t reprogram_devices = 0;   // devices touched by the retry loop
  std::int64_t reprogram_rounds = 0;    // total reprogram pulses issued
  std::int64_t verify_failures = 0;     // still out of tolerance after retries
  std::int64_t residual_faulty = 0;     // faulty devices in *mapped* columns

  /// Fault density that remains visible to the MVM after remapping.
  double residual_fault_fraction() const {
    return devices > 0 ? static_cast<double>(residual_faulty) /
                             static_cast<double>(devices)
                       : 0.0;
  }
};

/// TileRepairStats aggregated over every tile of an AnalogMatmul.
struct ArrayFaultStats {
  std::int64_t tiles = 0;
  std::int64_t dead_tiles = 0;
  std::int64_t devices = 0;
  std::int64_t physical_devices = 0;
  std::int64_t faulty_devices = 0;
  std::int64_t residual_faulty = 0;
  std::int64_t cols_remapped = 0;
  std::int64_t reprogram_devices = 0;
  std::int64_t reprogram_rounds = 0;
  std::int64_t verify_failures = 0;

  void accumulate(const TileRepairStats& t) {
    ++tiles;
    if (t.tile_dead) ++dead_tiles;
    devices += t.devices;
    physical_devices += t.physical_devices;
    faulty_devices += t.faulty_devices;
    residual_faulty += t.residual_faulty;
    cols_remapped += t.cols_remapped;
    reprogram_devices += t.reprogram_devices;
    reprogram_rounds += t.reprogram_rounds;
    verify_failures += t.verify_failures;
  }

  double residual_fault_fraction() const {
    return devices > 0 ? static_cast<double>(residual_faulty) /
                             static_cast<double>(devices)
                       : 0.0;
  }
  /// Raw fabrication fault density over the physical arrays.
  double raw_fault_fraction() const {
    return physical_devices > 0 ? static_cast<double>(faulty_devices) /
                                      static_cast<double>(physical_devices)
                                : 0.0;
  }
};

}  // namespace nora::faults
